//! Convergecast (data gathering) over the **unicast** primitive.
//!
//! The paper's models expose two primitives — broadcast and unicast
//! (§3.2) — but its case study exercises only broadcast. This protocol
//! exercises unicast under the same CAM collision semantics: after a
//! dissemination phase establishes a BFS tree, every node forwards a
//! report to its parent, hop by hop, until all reports reach the source —
//! the data-gathering workload the paper's introduction motivates
//! (in-network processing, query responses).
//!
//! ARQ model: a sender retransmits its pending report until the parent
//! receives it cleanly, pacing retries with **binary exponential backoff**
//! — after each failed attempt the contention window doubles (up to a
//! cap) and the node sleeps a uniform number of phases from the window.
//! Without backoff the funnel around the source deadlocks at moderate
//! density: with `K` persistent contenders and `s` slots, the probability
//! of a clean slot decays like `K(1/s)(1−1/s)^{K−1}`, which is already
//! ~1e-6 at `K = 40, s = 3` (congestion collapse — observed, then fixed,
//! during development). Delivery feedback is idealized (the simulator
//! knows when the parent heard it); real ACKs would add the traffic
//! quantified by [`crate::protocols::ack_flood`]. Reports aggregate at
//! relays: a parent holding `k` child reports forwards them as one packet
//! (perfect aggregation).

use crate::medium::{Medium, MediumScratch};
use nss_model::comm::CommunicationModel;
use nss_model::ids::NodeId;
use nss_model::topology::Topology;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration of a convergecast execution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConvergecastConfig {
    /// Slots per phase.
    pub s: u32,
    /// Communication model (CAM by default).
    pub model: CommunicationModel,
    /// Hard cap on phases.
    pub max_phases: usize,
    /// Maximum backoff window in phases (binary exponential backoff
    /// doubles from 1 up to this cap after each failed attempt).
    pub max_backoff: u32,
}

impl Default for ConvergecastConfig {
    fn default() -> Self {
        ConvergecastConfig {
            s: 3,
            model: CommunicationModel::CAM,
            max_phases: 100_000,
            max_backoff: 256,
        }
    }
}

/// Outcome of a convergecast execution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConvergecastOutcome {
    /// Nodes connected to the source (reports that could possibly arrive).
    pub reachable: usize,
    /// Reports that arrived at the source.
    pub delivered: usize,
    /// Unicast transmissions performed.
    pub transmissions: u64,
    /// Phases until completion (or the cap).
    pub phases: usize,
}

impl ConvergecastOutcome {
    /// Delivered fraction of the reachable reports.
    pub fn delivery_ratio(&self) -> f64 {
        if self.reachable == 0 {
            1.0
        } else {
            self.delivered as f64 / self.reachable as f64
        }
    }
}

/// Runs convergecast over the BFS tree rooted at the source.
pub fn run_convergecast(
    topo: &Topology,
    cfg: &ConvergecastConfig,
    seed: u64,
) -> ConvergecastOutcome {
    assert!(cfg.s >= 1, "need at least one slot");
    let n = topo.len();
    let mut rng = SmallRng::seed_from_u64(seed);
    let medium = Medium::new(cfg.model);
    let mut scratch = MediumScratch::new(n);

    // BFS parents.
    let levels = topo.bfs_levels(NodeId::SOURCE);
    let mut parent = vec![u32::MAX; n];
    for u in 0..n as u32 {
        if levels[u as usize] == u32::MAX || u == NodeId::SOURCE.0 {
            continue;
        }
        // Parent: any neighbor one level closer (first by id, deterministic).
        for &v in topo.neighbors(NodeId(u)) {
            if levels[v as usize] + 1 == levels[u as usize] {
                parent[u as usize] = v;
                break;
            }
        }
    }
    let reachable = (0..n)
        .filter(|&u| u != NodeId::SOURCE.index() && levels[u] != u32::MAX)
        .count();

    // pending[u] = number of reports buffered at u awaiting the uplink hop.
    let mut pending = vec![0u32; n];
    for u in 0..n {
        if u != NodeId::SOURCE.index() && levels[u] != u32::MAX {
            pending[u] = 1; // its own report
        }
    }
    let mut delivered = 0usize;
    let mut transmissions = 0u64;
    let mut phases = 0usize;
    let mut slots: Vec<Vec<u32>> = vec![Vec::new(); cfg.s as usize];
    // What each transmitter is trying to deliver this phase.
    let mut in_flight = vec![0u32; n];
    // Binary exponential backoff state: current window and phases left to
    // wait before the next attempt.
    let mut window = vec![1u32; n];
    let mut wait = vec![0u32; n];

    for _ in 0..cfg.max_phases {
        for sl in &mut slots {
            sl.clear();
        }
        let mut any = false;
        let mut attempted: Vec<u32> = Vec::new();
        for u in 0..n as u32 {
            let ui = u as usize;
            if pending[ui] == 0 || parent[ui] == u32::MAX {
                continue;
            }
            any = true; // work remains even while backing off
            if wait[ui] > 0 {
                wait[ui] -= 1;
                continue;
            }
            // Transmit the whole buffered aggregate as one packet.
            in_flight[ui] = pending[ui];
            slots[rng.random_range(0..cfg.s) as usize].push(u);
            attempted.push(u);
            transmissions += 1;
        }
        if !any {
            break;
        }
        phases += 1;

        // A transmitter's buffer drains only if the parent heard it; fresh
        // arrivals land in the parent's buffer for the next phase.
        let mut arrived: Vec<(usize, u32)> = Vec::new();
        let mut drained: Vec<usize> = Vec::new();
        for sl in &slots {
            medium.resolve_slot(topo, sl, &mut scratch, None, |rx, tx| {
                let txi = tx.index();
                if parent[txi] == rx.0 {
                    arrived.push((rx.index(), in_flight[txi]));
                    drained.push(txi);
                }
            });
        }
        for &txi in &drained {
            pending[txi] -= in_flight[txi];
            in_flight[txi] = 0;
            window[txi] = 1; // success resets the contention window
            wait[txi] = 0;
        }
        for u in attempted {
            let ui = u as usize;
            if in_flight[ui] > 0 {
                // Failed attempt: double the window (capped) and draw a
                // uniform backoff from it.
                in_flight[ui] = 0;
                window[ui] = (window[ui] * 2).min(cfg.max_backoff);
                wait[ui] = rng.random_range(0..window[ui]);
            }
        }
        for (rxi, count) in arrived {
            if rxi == NodeId::SOURCE.index() {
                delivered += count as usize;
            } else {
                pending[rxi] += count;
            }
        }
    }

    ConvergecastOutcome {
        reachable,
        delivered,
        transmissions,
        phases,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nss_model::deployment::{DeployedNetwork, Deployment};
    use nss_model::geometry::Point2;

    fn line(n: usize) -> Topology {
        let pts = (0..n).map(|i| Point2::new(i as f64, 0.0)).collect();
        Topology::build(&DeployedNetwork::from_positions(pts, 1.0))
    }

    #[test]
    fn line_delivers_all_reports() {
        let topo = line(6);
        let out = run_convergecast(&topo, &ConvergecastConfig::default(), 4);
        assert_eq!(out.reachable, 5);
        assert_eq!(out.delivered, 5, "all reports must funnel to the source");
        // At least one hop per report per level: 5+4+3+2+1 = 15 successful
        // hops minimum.
        assert!(out.transmissions >= 15);
    }

    #[test]
    fn aggregation_bounds_transmissions_under_cfm() {
        // Under CFM (no collisions), every phase drains every buffer one
        // hop: a node at level L needs at most L phases for its report, and
        // each node transmits at most once per phase.
        let topo = line(5);
        let cfg = ConvergecastConfig {
            model: CommunicationModel::Cfm,
            ..ConvergecastConfig::default()
        };
        let out = run_convergecast(&topo, &cfg, 1);
        assert_eq!(out.delivered, 4);
        assert_eq!(out.phases, 4, "pipeline depth equals eccentricity");
        // Node i transmits for i phases? With aggregation: phases 4, tx per
        // phase ≤ 4 → ≤ 16.
        assert!(out.transmissions <= 16);
    }

    #[test]
    fn dense_network_congests_but_completes() {
        let topo = Topology::build(&Deployment::disk(3, 1.0, 30.0).sample(7));
        let out = run_convergecast(&topo, &ConvergecastConfig::default(), 7);
        assert!(
            out.delivery_ratio() > 0.99,
            "ARQ should eventually deliver everything: {}",
            out.delivery_ratio()
        );
        // Contention forces retransmissions: more transmissions than the
        // CFM lower bound (sum of BFS levels).
        let levels = topo.bfs_levels(NodeId::SOURCE);
        let lower: u64 = levels
            .iter()
            .filter(|&&l| l != u32::MAX)
            .map(|&l| u64::from(l))
            .sum();
        assert!(
            out.transmissions > lower,
            "CAM contention should cost retries: {} vs lower bound {}",
            out.transmissions,
            lower
        );
    }

    #[test]
    fn backoff_prevents_funnel_livelock() {
        // Without exponential backoff, ~60 persistent level-1 contenders in
        // 3 slots make the per-phase success probability ~1e-9 — the run
        // would exhaust max_phases with zero deliveries. Backoff must keep
        // both phases and per-report transmissions modest.
        let topo = Topology::build(&Deployment::disk(4, 1.0, 60.0).sample(4));
        let out = run_convergecast(&topo, &ConvergecastConfig::default(), 4);
        assert!(
            out.delivery_ratio() > 0.99,
            "delivery ratio {}",
            out.delivery_ratio()
        );
        assert!(
            out.phases < 5_000,
            "backoff should drain the funnel quickly: {} phases",
            out.phases
        );
        let per_report = out.transmissions as f64 / out.reachable.max(1) as f64;
        assert!(
            per_report < 50.0,
            "per-report transmissions too high: {per_report:.1}"
        );
    }

    #[test]
    fn disconnected_nodes_dont_count() {
        // Sparse disk with isolated nodes: delivery ratio is relative to
        // the connected component only.
        let topo = Topology::build(&Deployment::disk(5, 1.0, 2.0).sample(13));
        let out = run_convergecast(&topo, &ConvergecastConfig::default(), 3);
        assert!(out.reachable < topo.len() - 1);
        assert_eq!(out.delivered, out.reachable);
    }

    #[test]
    fn deterministic_per_seed() {
        let topo = Topology::build(&Deployment::disk(3, 1.0, 25.0).sample(5));
        let a = run_convergecast(&topo, &ConvergecastConfig::default(), 8);
        let b = run_convergecast(&topo, &ConvergecastConfig::default(), 8);
        assert_eq!(a.transmissions, b.transmissions);
        assert_eq!(a.phases, b.phases);
    }

    #[test]
    fn singleton_trivially_complete() {
        let topo = line(1);
        let out = run_convergecast(&topo, &ConvergecastConfig::default(), 0);
        assert_eq!(out.reachable, 0);
        assert_eq!(out.delivered, 0);
        assert_eq!(out.delivery_ratio(), 1.0);
        assert_eq!(out.transmissions, 0);
    }
}
