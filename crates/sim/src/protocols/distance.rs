//! Distance-based (area-based) broadcast suppression.
//!
//! The second member of the Williams et al. taxonomy the paper cites
//! (§2): a node rebroadcasts only if the *additional area* its
//! transmission would cover is large enough, approximated by the distance
//! to the closest heard sender — if some sender was within `d·r`, the
//! node's own broadcast would add little coverage, so it stays silent.
//! Extending the paper's analysis to this scheme is its declared future
//! work; here it runs under identical CAM semantics for empirical
//! comparison with PB_CAM.
//!
//! Distance knowledge is assumed available from received signal strength
//! (the standard assumption in the cited work); the simulator reads it
//! from ground-truth positions.

use crate::bits::BitSet;
use crate::medium::{Medium, MediumScratch, SlotStats};
use crate::trace::SimTrace;
use nss_model::comm::CommunicationModel;
use nss_model::ids::NodeId;
use nss_model::topology::Topology;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration of a distance-based broadcast execution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DistanceConfig {
    /// Slots per phase.
    pub s: u32,
    /// Suppression distance as a fraction of the transmission radius:
    /// a node stays silent if it heard a sender within `threshold · r`.
    pub threshold: f64,
    /// Communication model.
    pub model: CommunicationModel,
    /// Hard cap on phases.
    pub max_phases: usize,
}

impl DistanceConfig {
    /// A common setting: suppress when the closest sender is within 0.4·r.
    pub fn paper(threshold: f64) -> Self {
        DistanceConfig {
            s: 3,
            threshold,
            model: CommunicationModel::CAM,
            max_phases: 10_000,
        }
    }
}

/// Runs one distance-based broadcast execution.
pub fn run_distance_broadcast(topo: &Topology, cfg: &DistanceConfig, seed: u64) -> SimTrace {
    assert!(cfg.s >= 1, "need at least one slot");
    assert!(
        (0.0..=1.0).contains(&cfg.threshold),
        "threshold must be a fraction of r"
    );
    let n = topo.len();
    let mut trace = SimTrace::new(n);
    if n == 0 {
        return trace;
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let medium = Medium::new(cfg.model);
    let mut scratch = MediumScratch::new(n);
    let suppress_r = cfg.threshold * topo.comm_radius();

    let mut informed = BitSet::new(n);
    informed.set(NodeId::SOURCE.index());
    // Closest distance at which each node has heard the packet so far.
    let mut closest = vec![f64::INFINITY; n];

    let mut scheduled: Vec<(u32, u32)> = vec![(NodeId::SOURCE.0, 0)];
    let mut slots: Vec<Vec<u32>> = vec![Vec::new(); cfg.s as usize];

    for phase in 1..=cfg.max_phases as u32 {
        for sl in &mut slots {
            sl.clear();
        }
        for &(u, sl) in &scheduled {
            slots[sl as usize].push(u);
        }

        let mut tx_count = 0u32;
        let mut newly: Vec<u32> = Vec::new();
        let mut deliveries = 0u64;
        let mut phase_stats = SlotStats::default();
        let mut transmitters: Vec<u32> = Vec::new();
        for sl in &slots {
            transmitters.clear();
            transmitters.extend(
                sl.iter()
                    .copied()
                    .filter(|&u| phase == 1 || closest[u as usize] > suppress_r),
            );
            tx_count += transmitters.len() as u32;
            phase_stats.absorb(medium.resolve_slot(
                topo,
                &transmitters,
                &mut scratch,
                None,
                |rx, tx| {
                    deliveries += 1;
                    let rxi = rx.index();
                    let d = topo.position(rx).dist(&topo.position(tx));
                    if d < closest[rxi] {
                        closest[rxi] = d;
                    }
                    if !informed.get(rxi) {
                        informed.set(rxi);
                        trace.first_rx_phase[rxi] = phase;
                        newly.push(rx.0);
                    }
                },
            ));
        }
        trace.broadcasts_by_phase.push(tx_count);
        trace.deliveries_by_phase.push(deliveries);
        trace.collisions_by_phase.push(phase_stats.collisions);
        trace.cs_deferrals_by_phase.push(phase_stats.cs_deferrals);
        nss_obs::counter!("sim.broadcasts").add(u64::from(tx_count));

        scheduled = newly
            .into_iter()
            .map(|v| (v, rng.random_range(0..cfg.s)))
            .collect();
        if scheduled.is_empty() {
            break;
        }
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Executor;
    use crate::slotted::GossipConfig;
    use nss_model::deployment::{DeployedNetwork, Deployment};
    use nss_model::geometry::Point2;

    fn line(n: usize) -> Topology {
        let pts = (0..n).map(|i| Point2::new(i as f64, 0.0)).collect();
        Topology::build(&DeployedNetwork::from_positions(pts, 1.0))
    }

    #[test]
    fn zero_threshold_is_flooding() {
        // threshold 0 never suppresses (closest heard distance > 0 always).
        let topo = line(6);
        let t = run_distance_broadcast(&topo, &DistanceConfig::paper(0.0), 3);
        let f = Executor::new(&topo)
            .gossip(GossipConfig::flooding_cam())
            .run(3);
        assert_eq!(t.informed_count() > 4, f.informed_count() > 4);
        assert!(t.total_broadcasts() <= t.informed_count() as u64);
    }

    #[test]
    fn full_threshold_suppresses_almost_everything() {
        // threshold 1: any heard sender (necessarily within r) suppresses,
        // so only the source transmits.
        let topo = line(6);
        let t = run_distance_broadcast(&topo, &DistanceConfig::paper(1.0), 3);
        assert_eq!(t.total_broadcasts(), 1);
        assert_eq!(t.informed_count(), 2); // source + its one neighbor
    }

    #[test]
    fn line_far_nodes_relay() {
        // Unit-spaced line: each hop hears its sender at distance exactly 1
        // — beyond a 0.5 threshold — so the packet relays the whole line
        // (modulo collisions; on a line the chain is collision-light).
        let topo = line(8);
        let completed = (0..30)
            .filter(|&s| {
                run_distance_broadcast(&topo, &DistanceConfig::paper(0.5), s).final_reachability()
                    == 1.0
            })
            .count();
        assert!(completed > 15, "only {completed}/30 completed");
    }

    #[test]
    fn suppression_cuts_broadcasts_under_cfm() {
        // Under CFM, duplicates arrive cleanly, so close-by nodes hear
        // nearby senders and stay silent.
        let topo = Topology::build(&Deployment::disk(4, 1.0, 60.0).sample(9));
        let mut cfg = DistanceConfig::paper(0.6);
        cfg.model = CommunicationModel::Cfm;
        let mut dist_tx = 0u64;
        let mut flood_tx = 0u64;
        let mut reach = 0.0;
        for seed in 0..5 {
            let t = run_distance_broadcast(&topo, &cfg, seed);
            dist_tx += t.total_broadcasts();
            reach += t.final_reachability();
            flood_tx += Executor::new(&topo)
                .gossip(GossipConfig::gossip_cfm(1.0))
                .run(seed)
                .total_broadcasts();
        }
        assert!(
            dist_tx * 2 < flood_tx,
            "distance suppression should halve traffic: {dist_tx} vs {flood_tx}"
        );
        assert!(reach / 5.0 > 0.9, "coverage should survive suppression");
    }

    #[test]
    fn deterministic_per_seed() {
        let topo = Topology::build(&Deployment::disk(3, 1.0, 40.0).sample(2));
        let a = run_distance_broadcast(&topo, &DistanceConfig::paper(0.4), 6);
        let b = run_distance_broadcast(&topo, &DistanceConfig::paper(0.4), 6);
        assert_eq!(a.first_rx_phase, b.first_rx_phase);
    }

    #[test]
    fn trace_valid() {
        let topo = Topology::build(&Deployment::disk(4, 1.0, 50.0).sample(5));
        for seed in 0..4 {
            run_distance_broadcast(&topo, &DistanceConfig::paper(0.4), seed)
                .phase_series()
                .validate()
                .unwrap();
        }
    }

    #[test]
    #[should_panic(expected = "fraction of r")]
    fn invalid_threshold_rejected() {
        let topo = line(2);
        let _ = run_distance_broadcast(&topo, &DistanceConfig::paper(1.5), 0);
    }
}
