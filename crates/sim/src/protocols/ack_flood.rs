//! ACK-based reliable flooding: the naive CFM implementation over CAM.
//!
//! §3.2.1 of the paper sketches how CFM's reliable broadcast could be
//! implemented on a CSMA/CA-style substrate: "require acknowledgment from
//! all receivers of each broadcasting and re-transmit the packet if timeout
//! occurs", and warns that it "usually leads to significant network traffic
//! ... and hence high time and energy costs". This module quantifies that
//! warning.
//!
//! Protocol (slot-synchronous, CAM medium):
//!
//! * Every informed node must deliver the packet reliably to *all* its
//!   neighbors (flooding). A sender retransmits the data packet each phase
//!   (random slot) until every neighbor has acknowledged, or a retry cap.
//! * A node that cleanly receives a data packet from `u` enqueues a
//!   (unicast) ACK to `u`, transmitted in a random slot of the next phase.
//!   ACK transmissions contend with everything else (Assumption 6 applies
//!   to unicast too).
//! * ACKs are re-sent on duplicate data receptions, as real protocols do —
//!   a lost ACK otherwise deadlocks the sender.

use crate::bits::BitSet;
use crate::medium::{Medium, MediumScratch};
use nss_model::comm::CommunicationModel;
use nss_model::ids::NodeId;
use nss_model::topology::Topology;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration of the ACK-based reliable flooding run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AckFloodConfig {
    /// Slots per phase.
    pub s: u32,
    /// Per-sender retransmission cap (phases of data transmission).
    pub max_retries: u32,
    /// Hard cap on phases.
    pub max_phases: usize,
}

impl Default for AckFloodConfig {
    fn default() -> Self {
        AckFloodConfig {
            s: 3,
            max_retries: 100,
            max_phases: 20_000,
        }
    }
}

/// Outcome of a reliable-flooding execution.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AckFloodOutcome {
    /// Total nodes.
    pub n_total: usize,
    /// Nodes that ended up informed (including the source).
    pub informed: usize,
    /// Data transmissions performed.
    pub data_tx: u64,
    /// ACK transmissions performed.
    pub ack_tx: u64,
    /// Phases executed.
    pub phases: usize,
    /// Senders that hit the retry cap with unacknowledged neighbors.
    pub gave_up: usize,
}

impl AckFloodOutcome {
    /// Total transmissions (data + ACK) — the energy proxy to compare with
    /// plain flooding's `M = informed count`.
    pub fn total_tx(&self) -> u64 {
        self.data_tx + self.ack_tx
    }

    /// Informed fraction.
    pub fn reachability(&self) -> f64 {
        self.informed as f64 / self.n_total as f64
    }
}

#[derive(Clone, Copy, PartialEq)]
enum Frame {
    Data,
    Ack { to: u32 },
}

/// Runs reliable flooding over `topo` under the plain CAM medium.
pub fn run_ack_flood(topo: &Topology, cfg: &AckFloodConfig, seed: u64) -> AckFloodOutcome {
    assert!(cfg.s >= 1, "need at least one slot");
    let n = topo.len();
    let mut rng = SmallRng::seed_from_u64(seed);
    let medium = Medium::new(CommunicationModel::CAM);
    let mut scratch = MediumScratch::new(n);

    let mut informed = BitSet::new(n);
    // Sender state: per-neighbor-position ACK bitmaps while actively flooding.
    let mut acked: Vec<BitSet> = (0..n).map(|_| BitSet::new(0)).collect();
    let mut retries = vec![0u32; n];
    let mut active = BitSet::new(n); // still retransmitting data
    let mut ack_queue: Vec<Vec<u32>> = vec![Vec::new(); n]; // pending ACK targets

    let src = NodeId::SOURCE.index();
    informed.set(src);
    active.set(src);
    acked[src] = BitSet::new(topo.degree(NodeId::SOURCE));

    let mut data_tx = 0u64;
    let mut ack_tx = 0u64;
    let mut gave_up = 0usize;
    let mut phases = 0usize;

    // Per-slot transmitter lists and what each node sends this phase.
    let mut slots: Vec<Vec<u32>> = vec![Vec::new(); cfg.s as usize];
    let mut frame: Vec<Frame> = vec![Frame::Data; n];

    for _phase in 0..cfg.max_phases {
        for sl in &mut slots {
            sl.clear();
        }
        let mut any = false;
        for u in 0..n as u32 {
            let ui = u as usize;
            // ACKs take priority: a node sends at most one frame per phase.
            if let Some(to) = ack_queue[ui].pop() {
                frame[ui] = Frame::Ack { to };
                slots[rng.random_range(0..cfg.s) as usize].push(u);
                ack_tx += 1;
                any = true;
            } else if active.get(ui) {
                if acked[ui].count_ones() == acked[ui].len() {
                    active.clear_bit(ui); // done: all neighbors acknowledged
                    continue;
                }
                if retries[ui] >= cfg.max_retries {
                    active.clear_bit(ui);
                    gave_up += 1;
                    continue;
                }
                retries[ui] += 1;
                frame[ui] = Frame::Data;
                slots[rng.random_range(0..cfg.s) as usize].push(u);
                data_tx += 1;
                any = true;
            }
        }
        if !any {
            break;
        }
        phases += 1;

        let mut newly: Vec<u32> = Vec::new();
        for sl in &slots {
            medium.resolve_slot(topo, sl, &mut scratch, None, |rx, tx| {
                let rxi = rx.index();
                match frame[tx.index()] {
                    Frame::Data => {
                        // Every clean data reception triggers an ACK to the
                        // sender (duplicates included).
                        ack_queue[rxi].push(tx.0);
                        if !informed.get(rxi) {
                            informed.set(rxi);
                            newly.push(rx.0);
                        }
                    }
                    Frame::Ack { to } => {
                        if to == rx.0 {
                            // Mark the ACKing neighbor in rx's bitmap.
                            if let Ok(pos) = topo.neighbors(rx).binary_search(&tx.0) {
                                if pos < acked[rxi].len() {
                                    acked[rxi].set(pos);
                                }
                            }
                        }
                    }
                }
            });
        }
        for v in newly {
            let vi = v as usize;
            active.set(vi);
            acked[vi] = BitSet::new(topo.degree(NodeId(v)));
        }
    }

    AckFloodOutcome {
        n_total: n,
        informed: informed.count_ones(),
        data_tx,
        ack_tx,
        phases,
        gave_up,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Executor;
    use crate::slotted::GossipConfig;
    use nss_model::deployment::{DeployedNetwork, Deployment};
    use nss_model::geometry::Point2;

    fn line(n: usize) -> Topology {
        let pts = (0..n).map(|i| Point2::new(i as f64, 0.0)).collect();
        Topology::build(&DeployedNetwork::from_positions(pts, 1.0))
    }

    #[test]
    fn line_becomes_fully_informed() {
        let topo = line(6);
        let out = run_ack_flood(&topo, &AckFloodConfig::default(), 3);
        assert_eq!(out.informed, 6);
        assert!(out.ack_tx > 0, "ACKs must flow");
        assert!(out.data_tx >= 6, "every node retransmits at least once");
    }

    #[test]
    fn reliable_flooding_costs_far_more_than_plain() {
        let topo = Topology::build(&Deployment::disk(3, 1.0, 25.0).sample(2));
        let plain = Executor::new(&topo)
            .gossip(GossipConfig::flooding_cam())
            .run(1);
        let reliable = run_ack_flood(&topo, &AckFloodConfig::default(), 1);
        assert!(
            reliable.total_tx() > 3 * plain.total_broadcasts(),
            "§3.2.1's warning should be visible: reliable {} vs plain {}",
            reliable.total_tx(),
            plain.total_broadcasts()
        );
        // ...but reliability pays in coverage.
        assert!(reliable.reachability() >= plain.final_reachability() - 0.05);
    }

    #[test]
    fn deterministic_per_seed() {
        let topo = Topology::build(&Deployment::disk(3, 1.0, 20.0).sample(8));
        let a = run_ack_flood(&topo, &AckFloodConfig::default(), 9);
        let b = run_ack_flood(&topo, &AckFloodConfig::default(), 9);
        assert_eq!(a.total_tx(), b.total_tx());
        assert_eq!(a.informed, b.informed);
    }

    #[test]
    fn retry_cap_terminates_dense_contention() {
        let topo = Topology::build(&Deployment::disk(3, 1.0, 60.0).sample(4));
        let cfg = AckFloodConfig {
            max_retries: 5,
            ..AckFloodConfig::default()
        };
        let out = run_ack_flood(&topo, &cfg, 0);
        assert!(out.phases < cfg.max_phases, "must terminate via caps");
        // With only 5 retries in a dense network, some senders give up.
        assert!(out.gave_up > 0, "expected give-ups under tight retry cap");
    }

    #[test]
    fn singleton_source_trivially_done() {
        let topo = line(1);
        let out = run_ack_flood(&topo, &AckFloodConfig::default(), 0);
        assert_eq!(out.informed, 1);
        assert_eq!(out.data_tx, 0, "no neighbors → nothing to send");
        assert_eq!(out.total_tx(), 0);
    }

    #[test]
    fn two_nodes_handshake() {
        let topo = line(2);
        let out = run_ack_flood(&topo, &AckFloodConfig::default(), 1);
        assert_eq!(out.informed, 2);
        // Source sends data (≥1), node 1 ACKs (≥1) and then floods to its
        // only neighbor (the source), which ACKs back.
        assert!(out.data_tx >= 2);
        assert!(out.ack_tx >= 2);
        assert_eq!(out.gave_up, 0);
    }
}
