//! Execution traces recorded by the simulator.
//!
//! A [`SimTrace`] captures one protocol execution at slot granularity:
//! when each node was first informed, how many transmissions happened per
//! phase, and per-broadcast delivery statistics (for the Fig. 12 measured
//! success rate). It collapses to the metric-ready
//! [`nss_model::metrics::PhaseSeries`] shared with the analytical model.

use nss_model::metrics::PhaseSeries;
use serde::{Deserialize, Serialize};

/// Phase/slot timestamp of a node's first reception.
pub const NEVER: u32 = u32::MAX;

/// One simulated execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimTrace {
    /// Total node count (including the source).
    pub n_total: usize,
    /// Phase (1-based) in which each node was first informed; the source is
    /// 0; [`NEVER`] marks nodes never informed.
    pub first_rx_phase: Vec<u32>,
    /// Transmissions performed in each phase (phase 1 = the source's).
    pub broadcasts_by_phase: Vec<u32>,
    /// Clean packet deliveries in each phase (for full energy accounting:
    /// every delivery costs `e_a` at the receiver).
    pub deliveries_by_phase: Vec<u64>,
    /// Receiver-slot pairs garbled by ≥ 2 concurrent in-range transmissions
    /// in each phase (CAM Assumption 6). Empty for executors that predate
    /// collision accounting; always empty under CFM.
    pub collisions_by_phase: Vec<u64>,
    /// Receptions destroyed by carrier-annulus interference in each phase
    /// (Appendix A collision rule only).
    pub cs_deferrals_by_phase: Vec<u64>,
    /// Per-phase sums of per-broadcast delivery ratios and broadcast counts
    /// with at least one neighbor: `(Σ delivered/deg, count)`. Aggregated
    /// per phase to keep traces compact.
    pub success_rate_by_phase: Vec<(f64, u32)>,
    /// Clean receptions destroyed by the fault plan's link-loss coin, per
    /// phase. Empty for fault-free executions.
    pub losses_by_phase: Vec<u64>,
    /// Clean receptions addressed to fault-killed nodes, per phase. Empty
    /// for fault-free executions.
    pub dead_drops_by_phase: Vec<u64>,
    /// Effectively-alive node count at each phase under the fault plan.
    /// Empty for fault-free executions (everyone is alive).
    pub alive_by_phase: Vec<u32>,
    /// Sole-candidate receptions rejected by the SINR threshold test per
    /// phase (signal present, no concurrent in-range transmitter, but
    /// out-of-range interference pushed SINR below β). Empty under the
    /// unit-disk backend.
    #[serde(default)]
    pub sinr_rejects_by_phase: Vec<u64>,
}

impl SimTrace {
    /// Creates an empty trace for `n_total` nodes (source pre-informed).
    pub fn new(n_total: usize) -> Self {
        let mut first_rx_phase = vec![NEVER; n_total];
        if n_total > 0 {
            first_rx_phase[0] = 0; // the source knows the packet at t = 0
        }
        SimTrace {
            n_total,
            first_rx_phase,
            broadcasts_by_phase: Vec::new(),
            deliveries_by_phase: Vec::new(),
            collisions_by_phase: Vec::new(),
            cs_deferrals_by_phase: Vec::new(),
            success_rate_by_phase: Vec::new(),
            losses_by_phase: Vec::new(),
            dead_drops_by_phase: Vec::new(),
            alive_by_phase: Vec::new(),
            sinr_rejects_by_phase: Vec::new(),
        }
    }

    /// Number of executed phases.
    pub fn phases(&self) -> usize {
        self.broadcasts_by_phase.len()
    }

    /// Number of informed nodes (including the source).
    pub fn informed_count(&self) -> usize {
        self.first_rx_phase.iter().filter(|&&p| p != NEVER).count()
    }

    /// Final reachability (informed fraction of all nodes).
    pub fn final_reachability(&self) -> f64 {
        self.informed_count() as f64 / self.n_total as f64
    }

    /// Total transmissions over the execution (the paper's energy proxy M).
    pub fn total_broadcasts(&self) -> u64 {
        self.broadcasts_by_phase.iter().map(|&b| u64::from(b)).sum()
    }

    /// Total clean deliveries (receiver-side energy accounting).
    pub fn total_deliveries(&self) -> u64 {
        self.deliveries_by_phase.iter().sum()
    }

    /// Total collided receiver-slot pairs over the execution.
    pub fn total_collisions(&self) -> u64 {
        self.collisions_by_phase.iter().sum()
    }

    /// Total carrier-sense deferrals over the execution.
    pub fn total_cs_deferrals(&self) -> u64 {
        self.cs_deferrals_by_phase.iter().sum()
    }

    /// Total link-loss drops over the execution (fault injection only).
    pub fn total_losses(&self) -> u64 {
        self.losses_by_phase.iter().sum()
    }

    /// Total dead-receiver drops over the execution (fault injection only).
    pub fn total_dead_drops(&self) -> u64 {
        self.dead_drops_by_phase.iter().sum()
    }

    /// Total SINR-threshold rejects over the execution (SINR backend only).
    pub fn total_sinr_rejects(&self) -> u64 {
        self.sinr_rejects_by_phase.iter().sum()
    }

    /// Smallest per-phase alive count, if fault tracking recorded any.
    pub fn min_alive(&self) -> Option<u32> {
        self.alive_by_phase.iter().copied().min()
    }

    /// Total energy in cost units: `e · (transmissions + receptions)`,
    /// per Assumption 1's symmetric send/receive cost.
    pub fn total_energy(&self, e_per_packet: f64) -> f64 {
        e_per_packet * (self.total_broadcasts() + self.total_deliveries()) as f64
    }

    /// Broadcast-weighted mean per-broadcast delivery success rate, if any
    /// broadcast had neighbors.
    pub fn mean_success_rate(&self) -> Option<f64> {
        let (num, den) = self
            .success_rate_by_phase
            .iter()
            .fold((0.0f64, 0u64), |(n, d), &(s, c)| (n + s, d + u64::from(c)));
        if den > 0 {
            Some(num / den as f64)
        } else {
            None
        }
    }

    /// Collapses to the shared phase-granular series used by all metrics.
    pub fn phase_series(&self) -> PhaseSeries {
        let phases = self.phases();
        let mut informed = vec![0u32; phases + 1]; // index = phase, 0 = start
        for &p in &self.first_rx_phase {
            if p != NEVER {
                let idx = (p as usize).min(phases);
                informed[idx] += 1;
            }
        }
        // prefix sums: informed[i] = informed by end of phase i
        let mut informed_cum = Vec::with_capacity(phases);
        let mut acc = informed[0]; // source (phase 0)
        for &x in informed.iter().take(phases + 1).skip(1) {
            acc += x;
            informed_cum.push(f64::from(acc));
        }
        let mut broadcasts_cum = Vec::with_capacity(phases);
        let mut b = 0.0;
        for &x in &self.broadcasts_by_phase {
            b += f64::from(x);
            broadcasts_cum.push(b);
        }
        PhaseSeries {
            n_total: self.n_total as f64,
            informed_cum,
            broadcasts_cum,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> SimTrace {
        let mut t = SimTrace::new(6);
        // source = node 0; nodes 1,2 informed phase 1; node 3 phase 2.
        t.first_rx_phase[1] = 1;
        t.first_rx_phase[2] = 1;
        t.first_rx_phase[3] = 2;
        t.broadcasts_by_phase = vec![1, 2, 1];
        t.deliveries_by_phase = vec![2, 1, 0];
        t.collisions_by_phase = vec![0, 1, 2];
        t.cs_deferrals_by_phase = vec![0, 0, 1];
        t.success_rate_by_phase = vec![(1.0, 1), (0.5, 2), (0.0, 1)];
        t
    }

    #[test]
    fn counting() {
        let t = sample_trace();
        assert_eq!(t.informed_count(), 4);
        assert!((t.final_reachability() - 4.0 / 6.0).abs() < 1e-12);
        assert_eq!(t.total_broadcasts(), 4);
        assert_eq!(t.total_deliveries(), 3);
        assert_eq!(t.total_collisions(), 3);
        assert_eq!(t.total_cs_deferrals(), 1);
        assert!((t.total_energy(2.0) - 14.0).abs() < 1e-12);
        assert_eq!(t.phases(), 3);
    }

    #[test]
    fn fault_accounting() {
        let mut t = sample_trace();
        // Fault-free traces leave the fault series empty.
        assert_eq!(t.total_losses(), 0);
        assert_eq!(t.total_dead_drops(), 0);
        assert_eq!(t.min_alive(), None);
        t.losses_by_phase = vec![0, 2, 1];
        t.dead_drops_by_phase = vec![1, 0, 0];
        t.alive_by_phase = vec![6, 5, 5];
        assert_eq!(t.total_losses(), 3);
        assert_eq!(t.total_dead_drops(), 1);
        assert_eq!(t.min_alive(), Some(5));
        assert_eq!(t.total_sinr_rejects(), 0);
        t.sinr_rejects_by_phase = vec![0, 1, 2];
        assert_eq!(t.total_sinr_rejects(), 3);
    }

    #[test]
    fn phase_series_conversion() {
        let t = sample_trace();
        let s = t.phase_series();
        s.validate().unwrap();
        assert_eq!(s.n_total, 6.0);
        assert_eq!(s.informed_cum, vec![3.0, 4.0, 4.0]);
        assert_eq!(s.broadcasts_cum, vec![1.0, 3.0, 4.0]);
    }

    #[test]
    fn source_informed_at_start() {
        let t = SimTrace::new(3);
        assert_eq!(t.first_rx_phase[0], 0);
        assert_eq!(t.informed_count(), 1);
        // No phases yet → empty series.
        let s = t.phase_series();
        assert!(s.informed_cum.is_empty());
    }

    #[test]
    fn success_rate_weighting() {
        let t = sample_trace();
        // (1.0 + 0.5 + 0.0) / 4 broadcasts-with-neighbors
        let m = t.mean_success_rate().unwrap();
        assert!((m - 1.5 / 4.0).abs() < 1e-12);
        let empty = SimTrace::new(2);
        assert_eq!(empty.mean_success_rate(), None);
    }

    #[test]
    fn reception_after_last_phase_clamped() {
        // Defensive: a first_rx_phase beyond the recorded phases lands in
        // the final cumulative bucket rather than panicking.
        let mut t = SimTrace::new(3);
        t.first_rx_phase[1] = 9;
        t.broadcasts_by_phase = vec![1, 1];
        t.deliveries_by_phase = vec![0, 0];
        let s = t.phase_series();
        assert_eq!(s.informed_cum, vec![1.0, 2.0]);
    }
}
