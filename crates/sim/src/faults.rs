//! Executor-side interpretation of a [`FaultPlan`].
//!
//! The plan itself (in `nss-model`) is a pure description; this module
//! turns it into per-phase liveness masks and per-slot link-loss decisions
//! for the simulator. Two invariants drive the design:
//!
//! 1. **Statelessness of random decisions.** Link-loss coins and
//!    dead-from-start thinning are pure hashes of
//!    `(faults_seed, phase, slot, tx, rx)` — no RNG object is advanced, so
//!    outcomes are identical under any thread count and any evaluation
//!    order, and the protocol/jitter streams are never perturbed.
//! 2. **Zero cost when absent.** Executors map an empty plan to `None` and
//!    take the exact pre-fault code path; nothing here runs.

use crate::bits::BitSet;
use crate::medium::SlotStats;
use nss_model::faults::{hash_unit, FaultPlan};
use nss_model::rng::splitmix64;

/// Per-slot fault context handed to [`crate::medium::Medium::resolve_slot`]
/// (crate::medium::Medium::resolve_slot): a liveness mask plus the link-loss
/// coin for this `(phase, slot)`.
#[derive(Debug)]
pub struct SlotFaults<'a> {
    /// Effective liveness this phase; dead receivers hear nothing.
    pub alive: &'a BitSet,
    /// Per-delivery independent loss probability.
    pub link_loss: f64,
    /// Whitened `(seed, phase, slot)` mix keying the per-link coins.
    mix: u64,
}

impl<'a> SlotFaults<'a> {
    /// Builds the context for one slot. `phase` and `slot` index the coin
    /// space so repeated transmissions over the same link see independent
    /// losses.
    pub fn new(alive: &'a BitSet, link_loss: f64, faults_seed: u64, phase: u32, slot: u32) -> Self {
        let mut s = faults_seed
            ^ u64::from(phase).wrapping_mul(0xC2B2_AE3D_27D4_EB4F)
            ^ u64::from(slot).wrapping_mul(0x1656_67B1_9E37_79F9);
        let mix = splitmix64(&mut s);
        SlotFaults {
            alive,
            link_loss,
            mix,
        }
    }

    /// Whether the `tx → rx` packet survives the independent link-loss
    /// coin in this slot. Pure function of `(mix, tx, rx)`.
    pub fn link_delivers(&self, tx: u32, rx: u32) -> bool {
        if self.link_loss <= 0.0 {
            return true;
        }
        if self.link_loss >= 1.0 {
            return false;
        }
        hash_unit(self.mix, (u64::from(tx) << 32) | u64::from(rx)) >= self.link_loss
    }
}

/// Phase-stepped liveness tracking for one execution of a [`FaultPlan`].
///
/// Composes the plan's downtime sources — scheduled outages, duty cycling,
/// dead-from-start thinning, and energy exhaustion — into a single `alive`
/// mask, recomputed at each [`FaultState::begin_phase`]. Energy exhaustion
/// ([`FaultState::note_broadcast`]) takes effect at the *next* phase
/// boundary: a node finishes the phase in which it spends its last unit.
#[derive(Debug)]
pub struct FaultState<'a> {
    plan: &'a FaultPlan,
    seed: u64,
    /// Survives the run-level `dead_frac` thinning (fixed at construction).
    survives: BitSet,
    /// Broadcast counts toward `energy_budget`.
    broadcasts: Vec<u32>,
    exhausted: BitSet,
    alive: BitSet,
}

impl<'a> FaultState<'a> {
    /// Prepares fault tracking for an `n`-node execution under `seed`
    /// (derived from [`Stream::Faults`](nss_model::rng::Stream::Faults)).
    pub fn new(plan: &'a FaultPlan, seed: u64, n: usize) -> Self {
        let mut survives = BitSet::new(n);
        for u in 0..n {
            if plan.survives_thinning(u as u32, seed) {
                survives.set(u);
            }
        }
        FaultState {
            plan,
            seed,
            survives,
            broadcasts: vec![0; n],
            exhausted: BitSet::new(n),
            alive: BitSet::filled(n),
        }
    }

    /// Recomputes the effective liveness mask for `phase` (1-based).
    pub fn begin_phase(&mut self, phase: u32) {
        for u in 0..self.alive.len() {
            self.alive.assign(
                u,
                self.survives.get(u)
                    && !self.exhausted.get(u)
                    && self.plan.scheduled_awake(u as u32, phase),
            );
        }
    }

    /// Effective liveness mask for the current phase.
    pub fn alive(&self) -> &BitSet {
        &self.alive
    }

    /// Whether node `u` is alive in the current phase.
    pub fn is_alive(&self, u: usize) -> bool {
        self.alive.get(u)
    }

    /// Number of alive nodes in the current phase.
    pub fn alive_count(&self) -> u32 {
        self.alive.count_ones() as u32
    }

    /// Records one broadcast by `u` toward its energy budget. The source
    /// (node 0) is exempt — a dead source makes every metric degenerate.
    pub fn note_broadcast(&mut self, u: u32) {
        if u == 0 {
            return;
        }
        let Some(budget) = self.plan.energy_budget else {
            return;
        };
        let c = &mut self.broadcasts[u as usize];
        *c += 1;
        if *c >= budget {
            self.exhausted.set(u as usize);
        }
    }

    /// Per-slot fault context for the medium.
    pub fn slot(&self, phase: u32, slot: u32) -> SlotFaults<'_> {
        SlotFaults::new(&self.alive, self.plan.link_loss, self.seed, phase, slot)
    }
}

/// Publishes a phase's fault counters to `nss-obs` (no-ops when the `obs`
/// feature is off or instrumentation is disabled).
pub fn record_fault_obs(stats: &SlotStats) {
    nss_obs::counter!("sim.losses").add(stats.losses);
    nss_obs::counter!("sim.dead_drops").add(stats.dead_drops);
}

#[cfg(test)]
mod tests {
    use super::*;
    use nss_model::faults::{DutyCycle, NodeOutage};

    #[test]
    fn link_coins_are_deterministic_and_slot_independent() {
        let alive = BitSet::filled(4);
        let a = SlotFaults::new(&alive, 0.5, 99, 3, 1);
        let b = SlotFaults::new(&alive, 0.5, 99, 3, 1);
        for tx in 0..4u32 {
            for rx in 0..4u32 {
                assert_eq!(a.link_delivers(tx, rx), b.link_delivers(tx, rx));
            }
        }
        // Different slots / phases / seeds key independent coins: over many
        // links the outcomes must not all agree.
        let c = SlotFaults::new(&alive, 0.5, 99, 3, 2);
        let d = SlotFaults::new(&alive, 0.5, 100, 3, 1);
        let links: Vec<(u32, u32)> = (0..40).map(|i| (i, (i + 1) % 40)).collect();
        let same_c = links
            .iter()
            .filter(|&&(t, r)| a.link_delivers(t, r) == c.link_delivers(t, r))
            .count();
        let same_d = links
            .iter()
            .filter(|&&(t, r)| a.link_delivers(t, r) == d.link_delivers(t, r))
            .count();
        assert!(same_c < links.len(), "slot index must matter");
        assert!(same_d < links.len(), "seed must matter");
    }

    #[test]
    fn link_loss_extremes() {
        let alive = BitSet::filled(2);
        let never = SlotFaults::new(&alive, 0.0, 1, 1, 0);
        assert!(never.link_delivers(0, 1));
        let always = SlotFaults::new(&alive, 1.0, 1, 1, 0);
        assert!(!always.link_delivers(0, 1));
    }

    #[test]
    fn link_loss_rate_matches_probability() {
        let alive = BitSet::filled(2);
        let f = SlotFaults::new(&alive, 0.3, 7, 2, 0);
        let lost = (0..10_000u32)
            .filter(|&i| !f.link_delivers(i, i.wrapping_add(1)))
            .count();
        let rate = lost as f64 / 10_000.0;
        assert!((0.27..=0.33).contains(&rate), "loss rate {rate}");
    }

    #[test]
    fn fault_state_composes_downtime() {
        let mut plan = FaultPlan::none();
        plan.outages.push(NodeOutage {
            node: 2,
            from_phase: 2,
            until_phase: Some(4),
        });
        plan.duty_cycle = Some(DutyCycle {
            period: 2,
            on_phases: 1,
        });
        let mut fs = FaultState::new(&plan, 5, 4);
        fs.begin_phase(1);
        // Source always alive; others follow the duty stagger.
        assert!(fs.is_alive(0));
        fs.begin_phase(2);
        assert!(!fs.is_alive(2), "outage overrides duty cycle");
        fs.begin_phase(4);
        // Outage over; node 2's duty phase: (4+2)%2=0 < 1 → awake.
        assert!(fs.is_alive(2));
        assert!(fs.alive_count() >= 1);
    }

    #[test]
    fn energy_budget_exhausts_at_next_phase() {
        let mut plan = FaultPlan::none();
        plan.energy_budget = Some(2);
        let mut fs = FaultState::new(&plan, 0, 3);
        fs.begin_phase(1);
        fs.note_broadcast(1);
        fs.begin_phase(2);
        assert!(fs.is_alive(1), "one broadcast of two spent");
        fs.note_broadcast(1);
        assert!(fs.is_alive(1), "still alive within the phase");
        fs.begin_phase(3);
        assert!(!fs.is_alive(1), "budget exhausted");
        // The source never exhausts.
        fs.note_broadcast(0);
        fs.note_broadcast(0);
        fs.note_broadcast(0);
        fs.begin_phase(4);
        assert!(fs.is_alive(0));
    }

    #[test]
    fn thinning_fixed_for_whole_run() {
        let plan = FaultPlan::thinned(0.5);
        let mut fs = FaultState::new(&plan, 31, 200);
        fs.begin_phase(1);
        let first = fs.alive().clone();
        fs.begin_phase(7);
        assert_eq!(fs.alive(), &first, "thinning is run-level");
        assert!(fs.is_alive(0), "source survives");
        let dead = 200 - first.count_ones();
        assert!(dead > 50, "roughly half should die, got {dead}/200");
    }
}
