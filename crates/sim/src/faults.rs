//! Executor-side interpretation of a [`FaultPlan`].
//!
//! The plan itself (in `nss-model`) is a pure description; this module
//! turns it into per-phase liveness masks and per-slot link-loss decisions
//! for the simulator. Two invariants drive the design:
//!
//! 1. **Statelessness of random decisions.** Link-loss coins and
//!    dead-from-start thinning are pure hashes of
//!    `(faults_seed, phase, slot, tx, rx)` — no RNG object is advanced, so
//!    outcomes are identical under any thread count and any evaluation
//!    order, and the protocol/jitter streams are never perturbed.
//! 2. **Zero cost when absent.** Executors map an empty plan to `None` and
//!    take the exact pre-fault code path; nothing here runs.

use crate::bits::BitSet;
use crate::medium::SlotStats;
use nss_model::faults::{hash_unit, Capability, FaultPlan};
use nss_model::rng::splitmix64;

/// Per-slot fault context handed to [`crate::medium::Medium::resolve_slot`]
/// (crate::medium::Medium::resolve_slot): a liveness mask plus the link-loss
/// coin for this `(phase, slot)`.
#[derive(Debug)]
pub struct SlotFaults<'a> {
    /// Effective *hearing* mask this phase: dead receivers hear nothing,
    /// and neither do transmit-only nodes (which stay alive as senders but
    /// have no receiver chain).
    pub alive: &'a BitSet,
    /// Per-delivery independent loss probability.
    pub link_loss: f64,
    /// Whitened `(seed, phase, slot)` mix keying the per-link coins.
    mix: u64,
}

impl<'a> SlotFaults<'a> {
    /// Builds the context for one slot. `phase` and `slot` index the coin
    /// space so repeated transmissions over the same link see independent
    /// losses.
    pub fn new(alive: &'a BitSet, link_loss: f64, faults_seed: u64, phase: u32, slot: u32) -> Self {
        let mut s = faults_seed
            ^ u64::from(phase).wrapping_mul(0xC2B2_AE3D_27D4_EB4F)
            ^ u64::from(slot).wrapping_mul(0x1656_67B1_9E37_79F9);
        let mix = splitmix64(&mut s);
        SlotFaults {
            alive,
            link_loss,
            mix,
        }
    }

    /// Whether the `tx → rx` packet survives the independent link-loss
    /// coin in this slot. Pure function of `(mix, tx, rx)`.
    pub fn link_delivers(&self, tx: u32, rx: u32) -> bool {
        if self.link_loss <= 0.0 {
            return true;
        }
        if self.link_loss >= 1.0 {
            return false;
        }
        hash_unit(self.mix, (u64::from(tx) << 32) | u64::from(rx)) >= self.link_loss
    }
}

/// Phase-stepped liveness tracking for one execution of a [`FaultPlan`].
///
/// Composes the plan's downtime sources — scheduled outages, duty cycling,
/// dead-from-start thinning, and energy exhaustion — into a single `alive`
/// mask, recomputed at each [`FaultState::begin_phase`]. Energy exhaustion
/// ([`FaultState::note_broadcast`]) takes effect at the *next* phase
/// boundary: a node finishes the phase in which it spends its last unit.
#[derive(Debug)]
pub struct FaultState<'a> {
    plan: &'a FaultPlan,
    seed: u64,
    /// Survives the run-level `dead_frac` thinning (fixed at construction).
    survives: BitSet,
    /// Has a receiver chain: capability class is not
    /// [`Capability::TransmitOnly`] (fixed at construction).
    rx_capable: BitSet,
    /// Broadcast counts toward `energy_budget`.
    broadcasts: Vec<u32>,
    exhausted: BitSet,
    alive: BitSet,
    /// `alive ∧ rx_capable` — the reception-gating mask handed to the
    /// medium. Bitwise equal to `alive` when `tx_only_frac` is zero, so
    /// plans without transmit-only nodes stay byte-identical.
    hearing: BitSet,
}

impl<'a> FaultState<'a> {
    /// Prepares fault tracking for an `n`-node execution under `seed`
    /// (derived from [`Stream::Faults`](nss_model::rng::Stream::Faults)).
    pub fn new(plan: &'a FaultPlan, seed: u64, n: usize) -> Self {
        let mut survives = BitSet::new(n);
        let mut rx_capable = BitSet::new(n);
        for u in 0..n {
            if plan.survives_thinning(u as u32, seed) {
                survives.set(u);
            }
            if plan.capability_of(u as u32, seed) != Capability::TransmitOnly {
                rx_capable.set(u);
            }
        }
        FaultState {
            plan,
            seed,
            survives,
            rx_capable,
            broadcasts: vec![0; n],
            exhausted: BitSet::new(n),
            alive: BitSet::filled(n),
            hearing: BitSet::filled(n),
        }
    }

    /// Recomputes the effective liveness mask for `phase` (1-based).
    pub fn begin_phase(&mut self, phase: u32) {
        for u in 0..self.alive.len() {
            let alive = self.survives.get(u)
                && !self.exhausted.get(u)
                && self.plan.scheduled_awake(u as u32, phase);
            self.alive.assign(u, alive);
            self.hearing.assign(u, alive && self.rx_capable.get(u));
        }
    }

    /// Effective liveness mask for the current phase.
    pub fn alive(&self) -> &BitSet {
        &self.alive
    }

    /// Whether node `u` is alive in the current phase (can transmit;
    /// transmit-only nodes count as alive).
    pub fn is_alive(&self, u: usize) -> bool {
        self.alive.get(u)
    }

    /// Whether node `u` can *receive* in the current phase: alive and not
    /// in the transmit-only capability class.
    pub fn can_hear(&self, u: usize) -> bool {
        self.hearing.get(u)
    }

    /// The reception-gating mask (`alive ∧ rx_capable`) for this phase.
    pub fn hearing(&self) -> &BitSet {
        &self.hearing
    }

    /// Number of alive nodes in the current phase.
    pub fn alive_count(&self) -> u32 {
        self.alive.count_ones() as u32
    }

    /// Records one broadcast by `u` toward its energy budget. The source
    /// (node 0) is exempt — a dead source makes every metric degenerate.
    pub fn note_broadcast(&mut self, u: u32) {
        if u == 0 {
            return;
        }
        let Some(budget) = self.plan.energy_budget else {
            return;
        };
        let c = &mut self.broadcasts[u as usize];
        *c += 1;
        if *c >= budget {
            self.exhausted.set(u as usize);
        }
    }

    /// Per-slot fault context for the medium. The reception mask is the
    /// hearing mask, so transmit-only nodes are counted as `dead_drops`
    /// receivers exactly like fault-killed ones.
    pub fn slot(&self, phase: u32, slot: u32) -> SlotFaults<'_> {
        SlotFaults::new(&self.hearing, self.plan.link_loss, self.seed, phase, slot)
    }
}

/// Publishes a phase's fault counters to `nss-obs` (no-ops when the `obs`
/// feature is off or instrumentation is disabled).
pub fn record_fault_obs(stats: &SlotStats) {
    nss_obs::counter!("sim.losses").add(stats.losses);
    nss_obs::counter!("sim.dead_drops").add(stats.dead_drops);
}

#[cfg(test)]
mod tests {
    use super::*;
    use nss_model::faults::{DutyCycle, NodeOutage};

    #[test]
    fn link_coins_are_deterministic_and_slot_independent() {
        let alive = BitSet::filled(4);
        let a = SlotFaults::new(&alive, 0.5, 99, 3, 1);
        let b = SlotFaults::new(&alive, 0.5, 99, 3, 1);
        for tx in 0..4u32 {
            for rx in 0..4u32 {
                assert_eq!(a.link_delivers(tx, rx), b.link_delivers(tx, rx));
            }
        }
        // Different slots / phases / seeds key independent coins: over many
        // links the outcomes must not all agree.
        let c = SlotFaults::new(&alive, 0.5, 99, 3, 2);
        let d = SlotFaults::new(&alive, 0.5, 100, 3, 1);
        let links: Vec<(u32, u32)> = (0..40).map(|i| (i, (i + 1) % 40)).collect();
        let same_c = links
            .iter()
            .filter(|&&(t, r)| a.link_delivers(t, r) == c.link_delivers(t, r))
            .count();
        let same_d = links
            .iter()
            .filter(|&&(t, r)| a.link_delivers(t, r) == d.link_delivers(t, r))
            .count();
        assert!(same_c < links.len(), "slot index must matter");
        assert!(same_d < links.len(), "seed must matter");
    }

    #[test]
    fn link_loss_extremes() {
        let alive = BitSet::filled(2);
        let never = SlotFaults::new(&alive, 0.0, 1, 1, 0);
        assert!(never.link_delivers(0, 1));
        let always = SlotFaults::new(&alive, 1.0, 1, 1, 0);
        assert!(!always.link_delivers(0, 1));
    }

    #[test]
    fn link_loss_rate_matches_probability() {
        let alive = BitSet::filled(2);
        let f = SlotFaults::new(&alive, 0.3, 7, 2, 0);
        let lost = (0..10_000u32)
            .filter(|&i| !f.link_delivers(i, i.wrapping_add(1)))
            .count();
        let rate = lost as f64 / 10_000.0;
        assert!((0.27..=0.33).contains(&rate), "loss rate {rate}");
    }

    #[test]
    fn fault_state_composes_downtime() {
        let mut plan = FaultPlan::none();
        plan.outages.push(NodeOutage {
            node: 2,
            from_phase: 2,
            until_phase: Some(4),
        });
        plan.duty_cycle = Some(DutyCycle {
            period: 2,
            on_phases: 1,
        });
        let mut fs = FaultState::new(&plan, 5, 4);
        fs.begin_phase(1);
        // Source always alive; others follow the duty stagger.
        assert!(fs.is_alive(0));
        fs.begin_phase(2);
        assert!(!fs.is_alive(2), "outage overrides duty cycle");
        fs.begin_phase(4);
        // Outage over; node 2's duty phase: (4+2)%2=0 < 1 → awake.
        assert!(fs.is_alive(2));
        assert!(fs.alive_count() >= 1);
    }

    #[test]
    fn energy_budget_exhausts_at_next_phase() {
        let mut plan = FaultPlan::none();
        plan.energy_budget = Some(2);
        let mut fs = FaultState::new(&plan, 0, 3);
        fs.begin_phase(1);
        fs.note_broadcast(1);
        fs.begin_phase(2);
        assert!(fs.is_alive(1), "one broadcast of two spent");
        fs.note_broadcast(1);
        assert!(fs.is_alive(1), "still alive within the phase");
        fs.begin_phase(3);
        assert!(!fs.is_alive(1), "budget exhausted");
        // The source never exhausts.
        fs.note_broadcast(0);
        fs.note_broadcast(0);
        fs.note_broadcast(0);
        fs.begin_phase(4);
        assert!(fs.is_alive(0));
    }

    #[test]
    fn hearing_mask_tracks_capability_classes() {
        // Without transmit-only nodes the hearing mask IS the alive mask.
        let plan = FaultPlan::thinned(0.4);
        let mut fs = FaultState::new(&plan, 11, 300);
        fs.begin_phase(1);
        assert_eq!(fs.hearing(), fs.alive());
        // With a transmit-only class, tx-only nodes stay alive (transmit)
        // but drop out of the hearing mask.
        let mixed = FaultPlan {
            dead_frac: 0.2,
            tx_only_frac: 0.3,
            ..FaultPlan::default()
        };
        let mut fs = FaultState::new(&mixed, 11, 300);
        fs.begin_phase(1);
        let mut tx_only_seen = 0;
        for u in 0..300 {
            match mixed.capability_of(u as u32, 11) {
                Capability::Normal => {
                    assert!(fs.is_alive(u) && fs.can_hear(u), "node {u}");
                }
                Capability::TransmitOnly => {
                    assert!(fs.is_alive(u) && !fs.can_hear(u), "node {u}");
                    tx_only_seen += 1;
                }
                Capability::Dead => {
                    assert!(!fs.is_alive(u) && !fs.can_hear(u), "node {u}");
                }
            }
        }
        assert!(tx_only_seen > 50, "expected a sizable tx-only class");
        // The slot context gates reception on the hearing mask.
        let sf = fs.slot(1, 0);
        assert_eq!(sf.alive, fs.hearing());
    }

    #[test]
    fn thinning_fixed_for_whole_run() {
        let plan = FaultPlan::thinned(0.5);
        let mut fs = FaultState::new(&plan, 31, 200);
        fs.begin_phase(1);
        let first = fs.alive().clone();
        fs.begin_phase(7);
        assert_eq!(fs.alive(), &first, "thinning is run-level");
        assert!(fs.is_alive(0), "source survives");
        let dead = 200 - first.count_ones();
        assert!(dead > 50, "roughly half should die, got {dead}/200");
    }
}
