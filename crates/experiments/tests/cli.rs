//! CLI contract tests for the `repro` binary: malformed flags exit with
//! usage + status 2 instead of panicking, and `list` prints the registry.

use std::process::Command;

fn repro(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("spawn repro")
}

#[test]
fn malformed_runs_value_exits_2_with_usage() {
    let out = repro(&["--runs", "x", "fig4"]);
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("--runs needs a number"),
        "stderr should name the bad flag: {err}"
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("usage: repro"), "usage goes to stdout");
}

#[test]
fn missing_out_argument_exits_2() {
    let out = repro(&["fig4", "--out"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--out needs a directory"));
}

#[test]
fn unknown_flag_exits_2() {
    let out = repro(&["--frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown flag"));
}

#[test]
fn unknown_command_exits_2() {
    let out = repro(&["fig99"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command: fig99"));
}

#[test]
fn invalid_fault_spec_exits_2() {
    let out = repro(&["--faults", "loss=2.0", "fig4"]);
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("--faults"),
        "stderr should blame the spec: {err}"
    );
}

#[test]
fn list_prints_registry() {
    let out = repro(&["list"]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    for name in ["fig4", "fig12", "ext-faults", "report"] {
        assert!(stdout.contains(name), "list should mention {name}");
    }
}

#[test]
fn no_commands_prints_usage_and_succeeds() {
    let out = repro(&[]);
    assert_eq!(out.status.code(), Some(0));
    assert!(String::from_utf8_lossy(&out.stdout).contains("usage: repro"));
}
