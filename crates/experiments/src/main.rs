//! `repro` — regenerates every figure of the paper's evaluation plus the
//! extension experiments.
//!
//! ```sh
//! cargo run --release -p nss-experiments --bin repro -- all
//! cargo run --release -p nss-experiments --bin repro -- fig4 fig12
//! cargo run --release -p nss-experiments --bin repro -- --fast sim
//! cargo run --release -p nss-experiments --bin repro -- list
//! ```
//!
//! Commands are [`figures::Figure`] registry entries (`repro list` prints
//! them) plus the groups `analysis`, `sim`, `ext`, `misc`, and `all`, and
//! the long-running `repro serve` (the `nss-serve` HTTP query service;
//! own flags, blocks until killed).
//! Options: `--fast` (smoke-scale), `--out DIR`, `--runs N`, `--threads N`,
//! `--seed S`, `--faults SPEC` (e.g. `"loss=0.2,dead=0.1"`),
//! `--medium SPEC` (`unit-disk` or e.g. `"sinr:alpha=4,beta=0.5"`),
//! `--metrics-addr HOST:PORT` (live `/metrics` scrapes for the run's
//! duration), `--trace-out FILE` (flight-recorder dump, Chrome
//! `trace_event` JSON). The last two carry data only with `--features obs`.

#![allow(clippy::needless_range_loop)] // tabular row/column code reads better indexed
#![forbid(unsafe_code)]

mod common;
mod ext_connectivity;
mod ext_faults;
mod ext_sinr;
mod extensions;
mod fig04;
mod fig05;
mod fig06;
mod fig07;
mod fig08;
mod fig09;
mod fig10;
mod fig11;
mod fig12;
mod figures;
mod report;

use common::Ctx;
use figures::Figure;
use nss_model::comm::MediumBackend;
use nss_model::faults::FaultPlan;
use std::collections::BTreeSet;
use std::time::Instant;

fn main() {
    // `repro serve` is a long-running service, not a figure run: it takes
    // its own flags and never reaches the registry, so it is dispatched
    // before figure selection.
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.first().map(String::as_str) == Some("serve") {
        run_serve(&raw[1..]);
        return;
    }

    let (ctx, commands) = match parse_args(std::env::args().skip(1)) {
        Ok(parsed) => parsed,
        Err(msg) => {
            eprintln!("error: {msg}\n");
            print_usage();
            std::process::exit(2);
        }
    };
    if commands.is_empty() {
        print_usage();
        return;
    }
    if commands.iter().any(|c| c == "list") {
        print_list();
        return;
    }

    let selected = match select(&commands) {
        Ok(s) => s,
        Err(unknown) => {
            eprintln!("unknown command: {unknown}");
            print_usage();
            std::process::exit(2);
        }
    };

    // Live telemetry endpoint for the duration of the run; a bind failure
    // is a usage error (bad HOST:PORT or port taken), not a panic.
    let metrics_server = match &ctx.metrics_addr {
        Some(addr) => match nss_obs::serve::MetricsServer::start(addr.as_str()) {
            Ok(server) => {
                if !nss_obs::enabled() {
                    eprintln!("note: built without --features obs; /metrics will be empty");
                }
                eprintln!("serving /metrics on http://{}/metrics", server.addr());
                Some(server)
            }
            Err(e) => {
                eprintln!("error: --metrics-addr {addr}: {e}");
                std::process::exit(2);
            }
        },
        None => None,
    };

    let started = Instant::now();
    nss_obs::status!(
        "repro: {} (fast={}, runs={}, seed={}{})",
        selected.iter().copied().collect::<Vec<_>>().join(" "),
        ctx.fast,
        ctx.sim_runs(),
        ctx.seed,
        match (
            ctx.faults.is_empty(),
            matches!(ctx.medium, MediumBackend::UnitDisk),
        ) {
            (true, true) => String::new(),
            (false, true) => format!(", faults={}", ctx.faults.to_spec()),
            (true, false) => format!(", medium={}", ctx.medium.to_spec()),
            (false, false) => format!(
                ", faults={}, medium={}",
                ctx.faults.to_spec(),
                ctx.medium.to_spec()
            ),
        }
    );

    // Registry (declaration) order, so figures that calibrate plateau and
    // budget targets run before the figures that consume them.
    for fig in figures::REGISTRY {
        if selected.contains(fig.name()) {
            fig.run(&ctx);
        }
    }

    write_run_records(&ctx, &selected, started.elapsed().as_secs_f64());

    if let Some(path) = &ctx.trace_out {
        match nss_obs::trace::write_chrome_trace(path) {
            Ok(()) => nss_obs::status!("  wrote {} (chrome://tracing format)", path.display()),
            Err(e) => {
                eprintln!("error: --trace-out {}: {e}", path.display());
                std::process::exit(2);
            }
        }
    }
    if let Some(mut server) = metrics_server {
        server.shutdown();
    }
    nss_obs::status!("\ndone in {:.1}s", started.elapsed().as_secs_f64());
}

/// `repro serve`: starts the query service and blocks until the process
/// is killed. Flags mirror [`nss_serve::ServeConfig`]; malformed input is
/// a usage error (exit 2), never a panic.
fn run_serve(args: &[String]) {
    let mut config = nss_serve::ServeConfig::default();
    let mut it = args.iter();
    let parse_fail = |flag: &str, v: &str| -> ! {
        eprintln!("error: {flag} got '{v}', expected a number");
        std::process::exit(2);
    };
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next().map(String::as_str).unwrap_or_else(|| {
                eprintln!("error: {name} needs a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--addr" => config.addr = value("--addr").to_string(),
            "--workers" => {
                let v = value("--workers");
                config.workers = v.parse().unwrap_or_else(|_| parse_fail("--workers", v));
            }
            "--shards" => {
                let v = value("--shards");
                config.shards = v.parse().unwrap_or_else(|_| parse_fail("--shards", v));
            }
            "--cache-bytes" => {
                let v = value("--cache-bytes");
                config.cache_bytes = v.parse().unwrap_or_else(|_| parse_fail("--cache-bytes", v));
            }
            "--quad-points" => {
                let v = value("--quad-points");
                config.quad_points = v.parse().unwrap_or_else(|_| parse_fail("--quad-points", v));
            }
            "--help" | "-h" => {
                println!(
                    "usage: repro serve [--addr HOST:PORT] [--workers N] [--shards N]\n                   \
                     [--cache-bytes N] [--quad-points N]\n\
                     Serves GET /v1/optimal-p, GET /v1/reachability, POST /v1/batch,\n\
                     plus /metrics, /metrics.json, /healthz. Blocks until killed."
                );
                return;
            }
            other => {
                eprintln!("error: unknown serve flag: {other}");
                std::process::exit(2);
            }
        }
    }
    let server = match nss_serve::QueryServer::start(&config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("error: cannot serve on {}: {e}", config.addr);
            std::process::exit(2);
        }
    };
    if !nss_obs::enabled() {
        eprintln!("note: built without --features obs; /metrics will be empty");
    }
    eprintln!(
        "repro serve: http://{addr}/v1/optimal-p  (workers={workers}, shards={shards}, \
         cache {mib} MiB, quadrature {quad})",
        addr = server.addr(),
        workers = config.workers,
        shards = config.shards,
        mib = config.cache_bytes >> 20,
        quad = config.quad_points,
    );
    eprintln!(
        "endpoints: /v1/optimal-p /v1/reachability /v1/batch /metrics /metrics.json /healthz"
    );
    // Serve until the process is killed; worker threads own all the work.
    loop {
        std::thread::park();
    }
}

/// Parses flags and commands; any malformed flag is an `Err` (usage + exit
/// status 2 at the call site, never a panic).
fn parse_args(args: impl Iterator<Item = String>) -> Result<(Ctx, Vec<String>), String> {
    let mut ctx = Ctx::new();
    let mut commands = Vec::new();
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--fast" => ctx.fast = true,
            "--quiet" => nss_obs::console::set_verbosity(nss_obs::console::QUIET),
            "--out" => {
                ctx.out_dir = args.next().ok_or("--out needs a directory")?.into();
            }
            "--runs" => {
                let v = args.next().ok_or("--runs needs a number")?;
                ctx.runs = v
                    .parse()
                    .map_err(|_| format!("--runs needs a number, got '{v}'"))?;
            }
            "--threads" => {
                let v = args.next().ok_or("--threads needs a number")?;
                ctx.threads = v
                    .parse()
                    .map_err(|_| format!("--threads needs a number, got '{v}'"))?;
            }
            "--seed" => {
                let v = args.next().ok_or("--seed needs a number")?;
                ctx.seed = v
                    .parse()
                    .map_err(|_| format!("--seed needs a number, got '{v}'"))?;
            }
            "--faults" => {
                let v = args.next().ok_or("--faults needs a spec string")?;
                ctx.faults =
                    FaultPlan::parse_spec(&v).map_err(|e| format!("--faults spec '{v}': {e}"))?;
            }
            "--medium" => {
                let v = args.next().ok_or("--medium needs a spec string")?;
                ctx.medium = MediumBackend::parse_spec(&v)
                    .map_err(|e| format!("--medium spec '{v}': {e}"))?;
            }
            "--metrics-addr" => {
                ctx.metrics_addr = Some(args.next().ok_or("--metrics-addr needs HOST:PORT")?);
            }
            "--trace-out" => {
                ctx.trace_out = Some(args.next().ok_or("--trace-out needs a file path")?.into());
            }
            "--help" | "-h" => {
                print_usage();
                std::process::exit(0);
            }
            flag if flag.starts_with('-') => {
                return Err(format!("unknown flag: {flag}"));
            }
            cmd => commands.push(cmd.to_string()),
        }
    }
    Ok((ctx, commands))
}

/// Expands groups and validates names against the registry.
fn select(commands: &[String]) -> Result<BTreeSet<&'static str>, String> {
    let mut selected = BTreeSet::new();
    for cmd in commands {
        if cmd == "all" {
            selected.extend(figures::REGISTRY.iter().map(Figure::name));
        } else if figures::is_group(cmd) {
            selected.extend(
                figures::REGISTRY
                    .iter()
                    .filter(|f| f.group() == cmd)
                    .map(Figure::name),
            );
        } else if let Some(fig) = figures::find(cmd) {
            selected.insert(fig.name());
        } else {
            return Err(cmd.clone());
        }
    }
    Ok(selected)
}

/// Emits the run's provenance next to its artifacts: `RUN_MANIFEST.json`
/// (config fingerprint, seed, artifact hashes, counter snapshot) and
/// `OBS_METRICS.json` (full registry dump; all zeros without `--features
/// obs`). Both are written unconditionally — provenance is not optional.
fn write_run_records(ctx: &Ctx, selected: &BTreeSet<&str>, wall_s: f64) {
    std::fs::create_dir_all(&ctx.out_dir).expect("create results dir");

    let mut manifest = nss_obs::manifest::RunManifest::new("repro", ctx.seed);
    manifest.wall_s = wall_s;
    manifest.config_entry("fast", ctx.fast);
    manifest.config_entry("runs", ctx.sim_runs());
    manifest.config_entry("threads", ctx.threads);
    manifest.config_entry("out_dir", ctx.out_dir.display());
    manifest.config_entry("faults", ctx.faults.to_spec());
    manifest.config_entry("medium", ctx.medium.to_spec());
    manifest.config_entry("obs_enabled", nss_obs::enabled());
    for cmd in selected {
        manifest.commands.push((*cmd).to_string());
    }
    for path in ctx.artifacts() {
        manifest.add_artifact(&path);
    }
    manifest.capture_counters();
    let manifest_path = ctx.out_dir.join("RUN_MANIFEST.json");
    manifest.write(&manifest_path).expect("write manifest");
    nss_obs::status!("  wrote {}", manifest_path.display());

    let metrics_path = ctx.out_dir.join("OBS_METRICS.json");
    std::fs::write(
        &metrics_path,
        nss_obs::export::json(nss_obs::registry::Registry::global()),
    )
    .expect("write metrics");
    nss_obs::status!("  wrote {}", metrics_path.display());
}

/// `repro list`: every registered figure with its group and description.
fn print_list() {
    println!("{:<16} {:<10} description", "name", "group");
    for fig in figures::REGISTRY {
        println!("{:<16} {:<10} {}", fig.name(), fig.group(), fig.describe());
    }
    println!("\ngroups: analysis sim ext misc all");
}

fn print_usage() {
    println!(
        "usage: repro [--fast] [--quiet] [--out DIR] [--runs N] [--threads N] [--seed S]\n             \
         [--faults SPEC] [--medium SPEC] [--metrics-addr HOST:PORT] [--trace-out FILE]\n             \
         COMMAND...\n\
         commands:\n  \
         list                     print every registered figure\n  \
         fig4 fig5 fig6 fig7      analytical figures (ring model)\n  \
         fig8 fig9 fig10 fig11    simulated figures (30-run averages)\n  \
         fig12                    success-rate correlation\n  \
         ext-cs ext-cfmgap ext-grid ext-adaptive ext-ack ext-async ext-mumode\n  \
         ext-survival ext-cfmcost ext-schemes ext-converge ext-failures ext-tdma\n  \
         ext-slots ext-hetero ext-fieldsize ext-faults ext-sinr\n  \
         report                   compose results/REPORT.md from the CSVs\n  \
         analysis | sim | ext | misc | all\n  \
         serve                    run the HTTP query service (see `repro serve --help`)\n\
         fault spec: comma-separated, e.g. \"loss=0.2,dead=0.1,duty=3/5,budget=2,out=3:2-5\"\n\
         medium spec: \"unit-disk\" (default) or \"sinr[:alpha=A,beta=B,noise=N,kappa=K]\""
    );
}
