//! `repro` — regenerates every figure of the paper's evaluation plus the
//! extension experiments.
//!
//! ```sh
//! cargo run --release -p nss-experiments --bin repro -- all
//! cargo run --release -p nss-experiments --bin repro -- fig4 fig12
//! cargo run --release -p nss-experiments --bin repro -- --fast sim
//! ```
//!
//! Commands: `fig4 fig5 fig6 fig7` (analysis), `fig8 fig9 fig10 fig11`
//! (simulation), `fig12`, `ext-cs ext-cfmgap ext-grid ext-adaptive ext-ack
//! ext-async ext-mumode`, and the groups `analysis`, `sim`, `ext`, `all`.
//! Options: `--fast` (smoke-scale), `--out DIR`, `--runs N`, `--threads N`,
//! `--seed S`.

#![allow(clippy::needless_range_loop)] // tabular row/column code reads better indexed

mod common;
mod extensions;
mod fig04;
mod fig05;
mod fig06;
mod fig07;
mod fig08;
mod fig09;
mod fig10;
mod fig11;
mod fig12;
mod report;

use common::Ctx;
use std::collections::BTreeSet;
use std::time::Instant;

/// Runs one figure/extension under a named span so instrumented builds
/// record per-figure wall time (`<name>.seconds` histograms + span events).
fn timed<T>(name: &'static str, f: impl FnOnce() -> T) -> T {
    let _span = nss_obs::span!(name);
    f()
}

fn main() {
    let mut ctx = Ctx::new();
    let mut commands: BTreeSet<String> = BTreeSet::new();
    let mut args = std::env::args().skip(1).peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--fast" => ctx.fast = true,
            "--quiet" => nss_obs::console::set_verbosity(nss_obs::console::QUIET),
            "--out" => {
                ctx.out_dir = args.next().expect("--out needs a directory").into();
            }
            "--runs" => {
                ctx.runs = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--runs needs a number");
            }
            "--threads" => {
                ctx.threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--threads needs a number");
            }
            "--seed" => {
                ctx.seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seed needs a number");
            }
            "--help" | "-h" => {
                print_usage();
                return;
            }
            cmd => {
                commands.insert(cmd.to_string());
            }
        }
    }
    if commands.is_empty() {
        print_usage();
        return;
    }

    // Expand groups.
    let mut selected: BTreeSet<&str> = BTreeSet::new();
    for cmd in &commands {
        match cmd.as_str() {
            "analysis" => {
                selected.extend(["fig4", "fig5", "fig6", "fig7"]);
            }
            "sim" => {
                selected.extend(["fig8", "fig9", "fig10", "fig11"]);
            }
            "ext" => {
                selected.extend([
                    "ext-cs",
                    "ext-cfmgap",
                    "ext-grid",
                    "ext-adaptive",
                    "ext-ack",
                    "ext-async",
                    "ext-mumode",
                    "ext-survival",
                    "ext-cfmcost",
                    "ext-schemes",
                    "ext-converge",
                    "ext-failures",
                    "ext-tdma",
                    "ext-slots",
                    "ext-hetero",
                    "ext-fieldsize",
                ]);
            }
            "all" => {
                selected.extend([
                    "fig4",
                    "fig5",
                    "fig6",
                    "fig7",
                    "fig8",
                    "fig9",
                    "fig10",
                    "fig11",
                    "fig12",
                    "ext-cs",
                    "ext-cfmgap",
                    "ext-grid",
                    "ext-adaptive",
                    "ext-ack",
                    "ext-async",
                    "ext-mumode",
                    "ext-survival",
                    "ext-cfmcost",
                    "ext-schemes",
                    "ext-converge",
                    "ext-failures",
                    "ext-tdma",
                    "ext-slots",
                    "ext-hetero",
                    "ext-fieldsize",
                    "report",
                ]);
            }
            other => {
                selected.insert(other);
            }
        }
    }
    let known = [
        "fig4",
        "fig5",
        "fig6",
        "fig7",
        "fig8",
        "fig9",
        "fig10",
        "fig11",
        "fig12",
        "ext-cs",
        "ext-cfmgap",
        "ext-grid",
        "ext-adaptive",
        "ext-ack",
        "ext-async",
        "ext-mumode",
        "ext-survival",
        "ext-cfmcost",
        "ext-schemes",
        "ext-converge",
        "ext-failures",
        "ext-tdma",
        "ext-slots",
        "ext-hetero",
        "ext-fieldsize",
        "report",
    ];
    for cmd in &selected {
        if !known.contains(cmd) {
            eprintln!("unknown command: {cmd}");
            print_usage();
            std::process::exit(2);
        }
    }

    let started = Instant::now();
    nss_obs::status!(
        "repro: {} (fast={}, runs={}, seed={})",
        selected.iter().copied().collect::<Vec<_>>().join(" "),
        ctx.fast,
        ctx.sim_runs(),
        ctx.seed
    );

    // Shared analytical sweep for Figs. 4–7.
    let needs_analysis = ["fig4", "fig5", "fig6", "fig7"]
        .iter()
        .any(|f| selected.contains(f));
    let analysis = if needs_analysis {
        nss_obs::status_err!("running analytical sweep...");
        Some(timed("repro.analysis_sweep", || {
            common::analysis_sweep(&ctx)
        }))
    } else {
        None
    };

    // Fig. 4 (and the plateau target Figs. 5/6 reuse).
    let mut plateau = 0.72; // the paper's value, used if fig4 is skipped
    let mut energy_budget = 35.0; // the paper's Fig. 7 budget
    if let Some(sweep) = &analysis {
        if selected.contains("fig4") {
            let optima = timed("repro.fig4", || fig04::run(&ctx, sweep));
            plateau = optima.iter().map(|o| o.2).fold(f64::MAX, f64::min) * 0.999;
        }
        if selected.contains("fig5") {
            timed("repro.fig5", || fig05::run(&ctx, sweep, plateau));
        }
        if selected.contains("fig6") {
            let optima = timed("repro.fig6", || fig06::run(&ctx, sweep, plateau));
            if !optima.is_empty() {
                // The paper sets the Fig. 7 budget just below its Fig. 6
                // optimum; mirror that on our calibration.
                energy_budget = optima.iter().map(|o| o.2).sum::<f64>() / optima.len() as f64;
            }
        }
        if selected.contains("fig7") {
            timed("repro.fig7", || {
                fig07::run(&ctx, sweep, energy_budget.round())
            });
        }
    }

    // Shared simulated sweep for Figs. 8–11.
    let needs_sim = ["fig8", "fig9", "fig10", "fig11"]
        .iter()
        .any(|f| selected.contains(f));
    if needs_sim {
        nss_obs::status_err!(
            "running simulated sweep ({} runs per point)...",
            ctx.sim_runs()
        );
        let sweep = timed("repro.sim_sweep", || common::sim_sweep(&ctx, false));
        let mut sim_plateau = 0.63; // the paper's simulated plateau
        let mut sim_budget = 80.0; // the paper's Fig. 11 budget
        if selected.contains("fig8") {
            let optima = timed("repro.fig8", || fig08::run(&ctx, &sweep));
            sim_plateau = optima.iter().map(|o| o.2).fold(f64::MAX, f64::min) * 0.999;
        }
        if selected.contains("fig9") {
            timed("repro.fig9", || fig09::run(&ctx, &sweep, sim_plateau));
        }
        if selected.contains("fig10") {
            let optima = timed("repro.fig10", || fig10::run(&ctx, &sweep, sim_plateau));
            if !optima.is_empty() {
                sim_budget = optima.iter().map(|o| o.2).sum::<f64>() / optima.len() as f64;
            }
        }
        if selected.contains("fig11") {
            timed("repro.fig11", || {
                fig11::run(&ctx, &sweep, sim_budget.round())
            });
        }
    }

    if selected.contains("fig12") {
        timed("repro.fig12", || fig12::run(&ctx));
    }
    if selected.contains("ext-cs") {
        timed("repro.ext-cs", || extensions::ext_carrier_sense(&ctx));
    }
    if selected.contains("ext-cfmgap") {
        timed("repro.ext-cfmgap", || extensions::ext_cfm_gap(&ctx));
    }
    if selected.contains("ext-grid") {
        timed("repro.ext-grid", || extensions::ext_grid_percolation(&ctx));
    }
    if selected.contains("ext-adaptive") {
        timed("repro.ext-adaptive", || extensions::ext_adaptive(&ctx));
    }
    if selected.contains("ext-ack") {
        timed("repro.ext-ack", || extensions::ext_ack_flood(&ctx));
    }
    if selected.contains("ext-async") {
        timed("repro.ext-async", || extensions::ext_async(&ctx));
    }
    if selected.contains("ext-mumode") {
        timed("repro.ext-mumode", || extensions::ext_mu_mode(&ctx));
    }
    if selected.contains("ext-survival") {
        timed("repro.ext-survival", || extensions::ext_survival(&ctx));
    }
    if selected.contains("ext-cfmcost") {
        timed("repro.ext-cfmcost", || extensions::ext_cfm_cost(&ctx));
    }
    if selected.contains("ext-schemes") {
        timed("repro.ext-schemes", || extensions::ext_schemes(&ctx));
    }
    if selected.contains("ext-converge") {
        timed("repro.ext-converge", || extensions::ext_convergecast(&ctx));
    }
    if selected.contains("ext-failures") {
        timed("repro.ext-failures", || extensions::ext_failures(&ctx));
    }
    if selected.contains("ext-tdma") {
        timed("repro.ext-tdma", || extensions::ext_tdma(&ctx));
    }
    if selected.contains("ext-slots") {
        timed("repro.ext-slots", || extensions::ext_slots(&ctx));
    }
    if selected.contains("ext-hetero") {
        timed("repro.ext-hetero", || extensions::ext_hetero(&ctx));
    }
    if selected.contains("ext-fieldsize") {
        timed("repro.ext-fieldsize", || extensions::ext_fieldsize(&ctx));
    }
    if selected.contains("report") {
        timed("repro.report", || report::run(&ctx));
    }

    write_run_records(&ctx, &selected, started.elapsed().as_secs_f64());
    nss_obs::status!("\ndone in {:.1}s", started.elapsed().as_secs_f64());
}

/// Emits the run's provenance next to its artifacts: `RUN_MANIFEST.json`
/// (config fingerprint, seed, artifact hashes, counter snapshot) and
/// `OBS_METRICS.json` (full registry dump; all zeros without `--features
/// obs`). Both are written unconditionally — provenance is not optional.
fn write_run_records(ctx: &Ctx, selected: &BTreeSet<&str>, wall_s: f64) {
    std::fs::create_dir_all(&ctx.out_dir).expect("create results dir");

    let mut manifest = nss_obs::manifest::RunManifest::new("repro", ctx.seed);
    manifest.wall_s = wall_s;
    manifest.config_entry("fast", ctx.fast);
    manifest.config_entry("runs", ctx.sim_runs());
    manifest.config_entry("threads", ctx.threads);
    manifest.config_entry("out_dir", ctx.out_dir.display());
    manifest.config_entry("obs_enabled", nss_obs::enabled());
    for cmd in selected {
        manifest.commands.push((*cmd).to_string());
    }
    for path in ctx.artifacts() {
        manifest.add_artifact(&path);
    }
    manifest.capture_counters();
    let manifest_path = ctx.out_dir.join("RUN_MANIFEST.json");
    manifest.write(&manifest_path).expect("write manifest");
    nss_obs::status!("  wrote {}", manifest_path.display());

    let metrics_path = ctx.out_dir.join("OBS_METRICS.json");
    std::fs::write(
        &metrics_path,
        nss_obs::export::json(nss_obs::registry::Registry::global()),
    )
    .expect("write metrics");
    nss_obs::status!("  wrote {}", metrics_path.display());
}

fn print_usage() {
    println!(
        "usage: repro [--fast] [--quiet] [--out DIR] [--runs N] [--threads N] [--seed S] COMMAND...\n\
         commands:\n  \
         fig4 fig5 fig6 fig7      analytical figures (ring model)\n  \
         fig8 fig9 fig10 fig11    simulated figures (30-run averages)\n  \
         fig12                    success-rate correlation\n  \
         ext-cs ext-cfmgap ext-grid ext-adaptive ext-ack ext-async ext-mumode\n  \
         ext-survival ext-cfmcost ext-schemes ext-converge ext-failures ext-tdma ext-slots ext-hetero ext-fieldsize\n  \
         report                   compose results/REPORT.md from the CSVs\n  \
         analysis | sim | ext | all"
    );
}
