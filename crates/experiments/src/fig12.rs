//! Fig. 12 — flooding per-broadcast success rate vs the latency-optimal
//! probability (§6).
//!
//! Paper finding: the ratio p*/success_rate is nearly constant (~11)
//! across densities, suggesting density-oblivious adaptive tuning. We
//! compute the correlation analytically (as the paper does) *and* measure
//! the success rate in simulation.

use crate::common::{heading, Ctx};
use crate::fig04::LATENCY_BUDGET;
use nss_analysis::flooding::success_rate_correlation;
use nss_core::adaptive::measure_success_rate;
use nss_model::deployment::Deployment;
use nss_model::topology::Topology;

/// Runs the Fig. 12 reproduction.
pub fn run(ctx: &Ctx) {
    heading("Fig 12: flooding success rate vs latency-optimal probability");
    let rows = success_rate_correlation(
        ctx.ring_base(),
        &ctx.rhos(),
        &ctx.analysis_grid(),
        LATENCY_BUDGET,
    );

    nss_obs::status!(
        "{:>6} {:>14} {:>8} {:>8} {:>14}",
        "rho",
        "succ_rate",
        "p*",
        "ratio",
        "sim_succ_rate"
    );
    let mut csv = Vec::new();
    let mut ratios = Vec::new();
    for row in &rows {
        // Measured counterpart: probe flooding on sampled topologies.
        let probes = if ctx.fast { 2 } else { 5 };
        let topo = Topology::build(
            &Deployment::disk(5, 1.0, row.rho).sample(ctx.seed.wrapping_add(row.rho as u64)),
        );
        let sim_sr = measure_success_rate(&topo, 3, probes, ctx.seed);
        nss_obs::status!(
            "{:>6.0} {:>14.4} {:>8.2} {:>8.2} {:>14.4}",
            row.rho,
            row.success_rate,
            row.optimal_prob,
            row.ratio,
            sim_sr
        );
        csv.push(format!(
            "{},{},{},{},{}",
            row.rho, row.success_rate, row.optimal_prob, row.ratio, sim_sr
        ));
        ratios.push(row.ratio);
    }
    ctx.write_csv(
        "fig12_success_rate.csv",
        "rho,success_rate,p_opt,ratio,sim_success_rate",
        &csv,
    );

    let sr_series: Vec<(f64, f64)> = rows.iter().map(|r| (r.rho, r.success_rate)).collect();
    let p_series: Vec<(f64, f64)> = rows.iter().map(|r| (r.rho, r.optimal_prob)).collect();
    let ratio_series: Vec<(f64, f64)> = rows.iter().map(|r| (r.rho, r.ratio)).collect();
    ctx.write_svg(
        "fig12.svg",
        &nss_plot::Chart::new(
            "Fig 12: flooding success rate vs optimal probability",
            "node density rho",
            "value",
        )
        .with_series(nss_plot::Series::new("flooding success rate", sr_series))
        .with_series(nss_plot::Series::new("optimal p (Fig 4b)", p_series)),
    );
    ctx.write_svg(
        "fig12_ratio.svg",
        &nss_plot::Chart::new("Fig 12: ratio p*/success-rate", "node density rho", "ratio")
            .with_series(nss_plot::Series::new("ratio", ratio_series)),
    );

    let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
    let max = ratios.iter().cloned().fold(f64::MIN, f64::max);
    let min = ratios.iter().cloned().fold(f64::MAX, f64::min);
    nss_obs::status!(
        "\nratio p*/success_rate: mean {mean:.2}, range [{min:.2}, {max:.2}] (paper: ~11, near-constant)"
    );
}
