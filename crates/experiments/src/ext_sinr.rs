//! Ext T — the SINR physical layer versus the paper's unit-disk idealization.
//!
//! Part A overlays three reachability curves at the paper's mid density
//! (ρ = 60): the analytical ring-model prediction (which assumes unit-disk
//! reception, Assumption 6), the simulator under the default unit-disk
//! backend, and the simulator under the SINR backend with its default
//! parameters. Where the curves split is exactly where the idealization
//! stops paying for its tractability: SINR's capture effect *recovers*
//! receptions the unit-disk model writes off as collisions at high p, while
//! its interference threshold rejects marginal receptions unit-disk counts.
//!
//! Part B runs the transmit-only event-delivery metric
//! ([`nss_sim::events`]) over a growing transmit-only fraction under both
//! backends: deaf sensors push reports into an ever-smaller listening
//! population, and the backends disagree about how much the contended first
//! hop can carry.

use crate::common::{heading, Ctx};
use nss_analysis::ring_model::{RingModel, RingModelConfig};
use nss_model::comm::{MediumBackend, SinrParams};
use nss_model::deployment::Deployment;
use nss_model::faults::FaultPlan;
use nss_model::topology::Topology;
use nss_sim::events::{run_event_delivery, EventField};
use nss_sim::runner::Replication;
use nss_sim::slotted::GossipConfig;

/// Latency budget (phases) for the Part A reachability comparison.
const LATENCY: f64 = 10.0;

/// Density of both parts (the paper's mid point).
const RHO: f64 = 60.0;

pub fn run(ctx: &Ctx) {
    heading("Ext T: SINR backend vs unit-disk — reachability overlay and transmit-only uplink");
    part_a_overlay(ctx);
    part_b_events(ctx);
}

/// Part A: analytical prediction vs simulated unit-disk vs simulated SINR.
fn part_a_overlay(ctx: &Ctx) {
    nss_obs::status!(
        "{:>6} {:>12} {:>12} {:>12}",
        "p",
        "anal_reach",
        "unitdisk",
        "sinr"
    );
    let probs: Vec<f64> = if ctx.fast {
        vec![0.1, 0.3, 0.5, 0.7, 0.9]
    } else {
        ctx.sim_grid()
    };
    let sinr = MediumBackend::Sinr(SinrParams::DEFAULT);
    let mut csv = Vec::new();
    let mut anal_pts = Vec::new();
    let mut unit_pts = Vec::new();
    let mut sinr_pts = Vec::new();
    for (pi, &p) in probs.iter().enumerate() {
        let mut cfg = RingModelConfig::paper(RHO, p);
        cfg.quad_points = ctx.quad_points();
        let anal = RingModel::cached(cfg)
            .run()
            .phase_series()
            .reachability_at_latency(LATENCY);

        // Same seeds for both backends: the deployments (and the protocol
        // coin streams) are identical, so the delta is the physical layer.
        let rep = |backend: MediumBackend| {
            Replication::paper(
                Deployment::disk(5, 1.0, RHO),
                GossipConfig::pb_cam(p),
                ctx.seed.wrapping_add(0x51E0).wrapping_add(pi as u64),
            )
            .with_runs(ctx.sim_runs())
            .with_threads(ctx.threads)
            .with_faults(ctx.faults.clone())
            .with_medium(backend)
            .run()
            .reachability_at_latency(LATENCY)
        };
        let unit = rep(MediumBackend::UnitDisk);
        let shot = rep(sinr);

        nss_obs::status!(
            "{p:>6.2} {anal:>12.3} {:>12.3} {:>12.3}",
            unit.mean,
            shot.mean
        );
        csv.push(format!(
            "{p},{anal},{},{},{},{}",
            unit.mean, unit.ci95, shot.mean, shot.ci95
        ));
        anal_pts.push((p, anal));
        unit_pts.push((p, unit.mean));
        sinr_pts.push((p, shot.mean));
    }
    ctx.write_csv(
        "ext_sinr_overlay.csv",
        "p,analysis_reach,unitdisk_reach,unitdisk_ci95,sinr_reach,sinr_ci95",
        &csv,
    );
    let chart = nss_plot::Chart::new(
        "Reachability vs p: analysis and both physical layers (rho=60)",
        "broadcast probability p",
        "reachability within 10 phases",
    )
    .with_series(nss_plot::Series::new(
        "analysis (unit-disk rings)",
        anal_pts,
    ))
    .with_series(nss_plot::Series::new("sim, unit-disk backend", unit_pts))
    .with_series(nss_plot::Series::new("sim, SINR backend", sinr_pts));
    ctx.write_svg("ext_sinr_overlay.svg", &chart);
    nss_obs::status!("\nexpected shape: curves agree at low p; SINR capture lifts the high-p tail");
}

/// Part B: transmit-only uplink delivery under both backends.
fn part_b_events(ctx: &Ctx) {
    nss_obs::status!(
        "\n{:>8} {:>10} {:>12} {:>12} {:>12}",
        "tx_only",
        "backend",
        "heard_rate",
        "deliv_rate",
        "first_round"
    );
    let fracs: &[f64] = if ctx.fast {
        &[0.0, 0.4, 0.8]
    } else {
        &[0.0, 0.2, 0.4, 0.6, 0.8]
    };
    let backends = [
        ("unit-disk", MediumBackend::UnitDisk),
        ("sinr", MediumBackend::Sinr(SinrParams::DEFAULT)),
    ];
    let samples = ctx.sim_runs();
    let mut csv = Vec::new();
    let mut series: Vec<(String, Vec<(f64, f64)>)> = backends
        .iter()
        .map(|(label, _)| (format!("delivery, {label}"), Vec::new()))
        .collect();
    for (fi, &frac) in fracs.iter().enumerate() {
        let plan = if frac == 0.0 {
            FaultPlan::none()
        } else {
            FaultPlan::transmit_only(frac)
        };
        for (bi, (label, backend)) in backends.iter().enumerate() {
            let (mut heard, mut delivered, mut first) = (0.0, 0.0, 0.0);
            let mut first_n = 0u32;
            for run in 0..samples {
                let mix = ctx
                    .seed
                    .wrapping_add(0x51E1)
                    .wrapping_add((fi as u64) << 24)
                    .wrapping_add(u64::from(run));
                let topo = Topology::build(&Deployment::disk(5, 1.0, RHO).sample(mix));
                let field = EventField {
                    plan: &plan,
                    faults_seed: mix ^ 0xFA11,
                    rounds: 20,
                    slots: 4,
                    prob: 0.5,
                    backend: *backend,
                };
                let report = run_event_delivery(&topo, &field, mix ^ 0x3C07);
                heard += report.heard_rate();
                delivered += report.delivery_rate();
                if report.heard > 0 {
                    first += report.mean_first_heard_round;
                    first_n += 1;
                }
            }
            let n = f64::from(samples);
            let (heard, delivered) = (heard / n, delivered / n);
            let first = if first_n == 0 {
                0.0
            } else {
                first / f64::from(first_n)
            };
            nss_obs::status!(
                "{frac:>8.2} {label:>10} {heard:>12.3} {delivered:>12.3} {first:>12.2}"
            );
            csv.push(format!("{frac},{label},{heard},{delivered},{first}"));
            series[bi].1.push((frac, delivered));
        }
    }
    ctx.write_csv(
        "ext_sinr_events.csv",
        "tx_only_frac,backend,heard_rate,delivery_rate,mean_first_heard_round",
        &csv,
    );
    let mut chart = nss_plot::Chart::new(
        "Event delivery vs transmit-only fraction (rho=60)",
        "transmit-only fraction",
        "delivery rate to sink",
    );
    for (label, pts) in series {
        chart = chart.with_series(nss_plot::Series::new(label, pts));
    }
    ctx.write_svg("ext_sinr_events.svg", &chart);
    nss_obs::status!(
        "\nexpected shape: delivery degrades as listeners thin; backends split under contention"
    );
}
