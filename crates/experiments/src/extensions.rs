//! Extension experiments beyond the paper's figures (see DESIGN.md §4,
//! Ext A–E): carrier sensing, the CFM/CAM prediction gap, grid-deployment
//! percolation, adaptive tuning, ACK-based reliable flooding, and the
//! synchronous-vs-asynchronous execution comparison.

use crate::common::{heading, Ctx};
use crate::fig04::LATENCY_BUDGET;
use nss_analysis::mu::MuMode;
use nss_analysis::optimize::{Objective, ProbabilitySweep};
use nss_analysis::ring_model::RingModelConfig;
use nss_core::adaptive::{evaluate_adaptive, AdaptiveController};
use nss_core::network::NetworkModel;
use nss_core::prediction::flooding_gap;
use nss_model::comm::CollisionRule;
use nss_model::deployment::{Deployment, GridDeployment};
use nss_model::rng::{SeedFactory, Stream};
use nss_model::topology::Topology;
use nss_sim::executor::Executor;
use nss_sim::protocols::ack_flood::{run_ack_flood, AckFloodConfig};
use nss_sim::protocols::async_gossip::{run_async_gossip, AsyncGossipConfig};
use nss_sim::slotted::GossipConfig;
use nss_sim::stats::Summary;

/// Ext A — Appendix-A carrier-sense variant of Fig. 4(b).
pub fn ext_carrier_sense(ctx: &Ctx) {
    heading("Ext A: carrier-sense (2r) optimal probability vs transmission-range");
    nss_obs::status!(
        "{:>6} {:>10} {:>10} {:>10} {:>10}",
        "rho",
        "p*_tr",
        "reach_tr",
        "p*_cs",
        "reach_cs"
    );
    let obj = Objective::MaxReachAtLatency {
        phases: LATENCY_BUDGET,
    };
    let grid = ctx.analysis_grid();
    let mut csv = Vec::new();
    for rho in ctx.rhos() {
        let mut base = ctx.ring_base();
        base.rho = rho;
        let tr = ProbabilitySweep::run(base, &grid).optimum(obj).unwrap();
        let mut cs_cfg = base;
        cs_cfg.collision = CollisionRule::CARRIER_SENSE_2R;
        let cs = ProbabilitySweep::run(cs_cfg, &grid).optimum(obj).unwrap();
        nss_obs::status!(
            "{rho:>6.0} {:>10.2} {:>10.3} {:>10.2} {:>10.3}",
            tr.prob,
            tr.value,
            cs.prob,
            cs.value
        );
        csv.push(format!(
            "{rho},{},{},{},{}",
            tr.prob, tr.value, cs.prob, cs.value
        ));
    }
    ctx.write_csv(
        "ext_carrier_sense.csv",
        "rho,p_opt_tr,reach_tr,p_opt_cs,reach_cs",
        &csv,
    );
    nss_obs::status!("\nexpected shape: carrier sensing lowers reachability and pushes p* down");
}

/// Ext B — the CFM-vs-CAM flooding prediction gap (§1.2 motivation).
pub fn ext_cfm_gap(ctx: &Ctx) {
    heading("Ext B: CFM prediction vs CAM measurement for simple flooding");
    nss_obs::status!(
        "{:>6} {:>10} {:>12} {:>12} {:>10} {:>10}",
        "rho",
        "cfm_reach",
        "cam@cfm_lat",
        "cam_final",
        "cfm_lat",
        "cam_lat"
    );
    let runs = if ctx.fast { 5 } else { 15 };
    let mut csv = Vec::new();
    for rho in ctx.rhos() {
        let report = flooding_gap(&NetworkModel::paper(rho), runs, ctx.seed);
        nss_obs::status!(
            "{rho:>6.0} {:>10.3} {:>12.3} {:>12.3} {:>10.1} {:>10.1}",
            report.cfm.reachability,
            report.cam.reachability_at_cfm_latency.mean,
            report.cam.final_reachability.mean,
            report.cfm.latency_phases,
            report.cam.latency_phases.mean,
        );
        csv.push(format!(
            "{rho},{},{},{},{},{}",
            report.cfm.reachability,
            report.cam.reachability_at_cfm_latency.mean,
            report.cam.final_reachability.mean,
            report.cfm.latency_phases,
            report.cam.latency_phases.mean,
        ));
    }
    ctx.write_csv(
        "ext_cfm_gap.csv",
        "rho,cfm_reach,cam_reach_at_cfm_latency,cam_final_reach,cfm_latency,cam_latency",
        &csv,
    );
    nss_obs::status!("\nexpected shape: the CFM promise breaks progressively with density");
}

/// Ext C — grid-deployment CFM gossip percolation (ref. 32: threshold
/// ≈ 0.59 for bond/site-percolation-like behavior on the grid).
pub fn ext_grid_percolation(ctx: &Ctx) {
    heading("Ext C: CFM gossip on a grid — percolation-style threshold");
    let side = if ctx.fast { 21 } else { 41 };
    let runs = if ctx.fast { 5 } else { 20 };
    let factory = SeedFactory::new(ctx.seed);
    nss_obs::status!("{:>6} {:>12}", "p", "mean_reach");
    let mut csv = Vec::new();
    let mut series = Vec::new();
    for i in 1..=20 {
        let p = f64::from(i) / 20.0;
        let mut total = 0.0;
        for rep in 0..runs {
            let dep = Deployment::Grid(GridDeployment::new(side, 1.0, 1.0));
            let topo = Topology::build(&dep.sample(factory.seed(Stream::Deployment, rep)));
            let cfg = GossipConfig::gossip_cfm(p);
            let trace = Executor::new(&topo)
                .gossip(cfg)
                .run(factory.seed(Stream::Protocol, rep ^ (i as u64) << 8));
            total += trace.final_reachability();
        }
        let mean = total / runs as f64;
        nss_obs::status!("{p:>6.2} {mean:>12.3}");
        csv.push(format!("{p},{mean}"));
        series.push((p, mean));
    }
    ctx.write_csv("ext_grid_percolation.csv", "p,mean_reach", &csv);
    // Report the crossing of 50% reachability as the empirical threshold.
    let threshold = series
        .windows(2)
        .find(|w| w[0].1 < 0.5 && w[1].1 >= 0.5)
        .map(|w| w[1].0);
    nss_obs::status!(
        "\nempirical 50%-reach threshold: {:?} (ref. 32 reports ~0.59 for grids)",
        threshold
    );
}

/// Ext D — the §6 adaptive rule (p ≈ ratio · measured success rate) vs the
/// density-aware oracle.
pub fn ext_adaptive(ctx: &Ctx) {
    heading("Ext D: adaptive success-rate-driven probability vs oracle");
    let mut base = ctx.ring_base();
    base.prob = 1.0;
    let controller = AdaptiveController::calibrate(base, &[40.0, 80.0, 120.0], LATENCY_BUDGET);
    nss_obs::status!("calibrated ratio p*/sr = {:.2}", controller.ratio);
    nss_obs::status!(
        "{:>6} {:>10} {:>10} {:>10} {:>10} {:>10} {:>8}",
        "rho",
        "meas_sr",
        "p_adapt",
        "reach_ad",
        "p_oracle",
        "reach_or",
        "eff"
    );
    let runs = if ctx.fast { 3 } else { 10 };
    let mut csv = Vec::new();
    for rho in ctx.rhos() {
        let out = evaluate_adaptive(
            &NetworkModel::paper(rho),
            &controller,
            LATENCY_BUDGET,
            runs,
            ctx.seed,
        );
        nss_obs::status!(
            "{rho:>6.0} {:>10.4} {:>10.2} {:>10.3} {:>10.2} {:>10.3} {:>8.2}",
            out.measured_success_rate,
            out.adaptive_prob,
            out.adaptive_reach,
            out.oracle_prob,
            out.oracle_reach,
            out.efficiency()
        );
        csv.push(format!(
            "{rho},{},{},{},{},{},{}",
            out.measured_success_rate,
            out.adaptive_prob,
            out.adaptive_reach,
            out.oracle_prob,
            out.oracle_reach,
            out.efficiency()
        ));
    }
    ctx.write_csv(
        "ext_adaptive.csv",
        "rho,measured_sr,p_adaptive,reach_adaptive,p_oracle,reach_oracle,efficiency",
        &csv,
    );
    nss_obs::status!("\nexpected shape: efficiency stays near 1 without knowing the density");
}

/// Ext E — ACK-based reliable flooding (the §3.2.1 naive CFM
/// implementation) vs plain CAM flooding.
pub fn ext_ack_flood(ctx: &Ctx) {
    heading("Ext E: ACK-based reliable flooding cost vs plain flooding");
    nss_obs::status!(
        "{:>6} {:>12} {:>12} {:>10} {:>12} {:>10}",
        "rho",
        "plain_tx",
        "reliable_tx",
        "overhead",
        "rel_reach",
        "gave_up"
    );
    let runs = if ctx.fast { 2 } else { 5 };
    let factory = SeedFactory::new(ctx.seed);
    let mut csv = Vec::new();
    for rho in [20.0, 40.0, 60.0, 80.0] {
        let mut plain_tx = Vec::new();
        let mut rel_tx = Vec::new();
        let mut rel_reach = Vec::new();
        let mut gave_up = 0usize;
        for rep in 0..runs {
            let dep = Deployment::disk(4, 1.0, rho);
            let topo = Topology::build(&dep.sample(factory.seed(Stream::Deployment, rep)));
            let plain = Executor::new(&topo)
                .gossip(GossipConfig::flooding_cam())
                .run(factory.seed(Stream::Protocol, rep));
            plain_tx.push(plain.total_broadcasts() as f64);
            let rel = run_ack_flood(
                &topo,
                &AckFloodConfig::default(),
                factory.seed(Stream::Jitter, rep),
            );
            rel_tx.push(rel.total_tx() as f64);
            rel_reach.push(rel.reachability());
            gave_up += rel.gave_up;
        }
        let plain = Summary::of(&plain_tx);
        let rel = Summary::of(&rel_tx);
        let reach = Summary::of(&rel_reach);
        let overhead = rel.mean / plain.mean.max(1.0);
        nss_obs::status!(
            "{rho:>6.0} {:>12.0} {:>12.0} {:>9.1}x {:>12.3} {:>10}",
            plain.mean,
            rel.mean,
            overhead,
            reach.mean,
            gave_up
        );
        csv.push(format!(
            "{rho},{},{},{},{},{}",
            plain.mean, rel.mean, overhead, reach.mean, gave_up
        ));
    }
    ctx.write_csv(
        "ext_ack_flood.csv",
        "rho,plain_tx,reliable_tx,overhead,reliable_reach,gave_up",
        &csv,
    );
    nss_obs::status!(
        "\nexpected shape: reliable broadcast costs an order of magnitude more traffic"
    );
}

/// Ext F — synchronous (slotted) vs asynchronous (continuous-time) PB_CAM:
/// quantifies the paper's "optimistic perfect synchronization" assumption.
pub fn ext_async(ctx: &Ctx) {
    heading("Ext F: slotted (analysis assumption) vs asynchronous execution");
    nss_obs::status!(
        "{:>6} {:>6} {:>12} {:>12}",
        "rho",
        "p",
        "sync_reach",
        "async_reach"
    );
    let runs = if ctx.fast { 3 } else { 10 };
    let factory = SeedFactory::new(ctx.seed);
    let mut csv = Vec::new();
    for rho in [20.0f64, 60.0, 100.0, 140.0] {
        // Use a sensible probability for each density (from the Fig. 4 rule
        // of thumb p* ≈ 13/rho).
        let p = (13.0 / rho).clamp(0.05, 1.0);
        let mut sync_total = 0.0;
        let mut async_total = 0.0;
        for rep in 0..runs {
            let dep = Deployment::disk(5, 1.0, rho);
            let topo = Topology::build(&dep.sample(factory.seed(Stream::Deployment, rep)));
            let seed = factory.seed(Stream::Protocol, rep);
            sync_total += Executor::new(&topo)
                .gossip(GossipConfig::pb_cam(p))
                .run(seed)
                .phase_series()
                .reachability_at_latency(LATENCY_BUDGET);
            async_total += run_async_gossip(&topo, &AsyncGossipConfig::paper(p), seed)
                .phase_series()
                .reachability_at_latency(LATENCY_BUDGET);
        }
        let sync_mean = sync_total / runs as f64;
        let async_mean = async_total / runs as f64;
        nss_obs::status!("{rho:>6.0} {p:>6.2} {sync_mean:>12.3} {async_mean:>12.3}");
        csv.push(format!("{rho},{p},{sync_mean},{async_mean}"));
    }
    ctx.write_csv("ext_async.csv", "rho,p,sync_reach,async_reach", &csv);
    nss_obs::status!(
        "\nnote: async trades slot-alignment (collision prob 1/s) for interval overlap\n\
         (higher), but pipelines across phase boundaries — under a wall-clock latency\n\
         bound it can even lead; final reachability stays comparable"
    );
}

/// Ext H — Galton–Watson extinction correction: mean-field vs adjusted vs
/// simulated reachability at small probabilities.
pub fn ext_survival(ctx: &Ctx) {
    use nss_analysis::ring_model::RingModel;
    use nss_analysis::survival::survival_estimate;
    heading("Ext H: extinction-corrected analytical reachability at small p");
    nss_obs::status!(
        "{:>6} {:>6} {:>10} {:>12} {:>12} {:>12}",
        "rho",
        "p",
        "survival",
        "mean_field",
        "adjusted",
        "simulated"
    );
    let runs = if ctx.fast { 5 } else { 20 };
    let factory = SeedFactory::new(ctx.seed);
    let mut csv = Vec::new();
    for &(rho, p) in &[
        (40.0, 0.03),
        (40.0, 0.10),
        (80.0, 0.02),
        (80.0, 0.05),
        (140.0, 0.02),
    ] {
        let mut cfg = ctx.ring_base();
        cfg.rho = rho;
        cfg.prob = p;
        let est = survival_estimate(&RingModel::cached(cfg).run());
        let mut total = 0.0;
        for rep in 0..runs {
            let topo = Topology::build(
                &Deployment::disk(5, 1.0, rho).sample(factory.seed(Stream::Deployment, rep)),
            );
            total += Executor::new(&topo)
                .gossip(GossipConfig::pb_cam(p))
                .run(factory.seed(Stream::Protocol, rep))
                .final_reachability();
        }
        let sim = total / runs as f64;
        nss_obs::status!(
            "{rho:>6.0} {p:>6.2} {:>10.3} {:>12.3} {:>12.3} {sim:>12.3}",
            est.cascade_survival,
            est.mean_field_reachability,
            est.adjusted_reachability
        );
        csv.push(format!(
            "{rho},{p},{},{},{},{sim}",
            est.cascade_survival, est.mean_field_reachability, est.adjusted_reachability
        ));
    }
    ctx.write_csv(
        "ext_survival.csv",
        "rho,p,survival,mean_field_reach,adjusted_reach,simulated_reach",
        &csv,
    );
    nss_obs::status!(
        "\nexpected shape: the adjusted value is closer to the simulated mean than\n\
         the raw mean-field value at every small-p operating point (it remains\n\
         approximate: offspring means are collapsed to the earliest generation)"
    );
}

/// Ext I — density-aware CFM costs (§6 future work): naive vs refined
/// latency predictions against CAM reality.
pub fn ext_cfm_cost(ctx: &Ctx) {
    use nss_analysis::cfm_cost::RefinedCfm;
    heading("Ext I: density-aware CFM cost functions vs naive CFM vs CAM");
    let mut base = ctx.ring_base();
    base.prob = 1.0;
    let refined = RefinedCfm::calibrate(base, &ctx.rhos());
    nss_obs::status!(
        "{:>6} {:>12} {:>12} {:>12} {:>12}",
        "rho",
        "naive_lat",
        "refined_lat",
        "cam_lat",
        "attempts"
    );
    let runs = if ctx.fast { 3 } else { 10 };
    let mut csv = Vec::new();
    for rho in ctx.rhos() {
        let report = flooding_gap(&NetworkModel::paper(rho), runs, ctx.seed);
        // Naive CFM: one phase per hop. Refined: expected attempts per hop.
        let naive = report.cfm.latency_phases;
        let refined_lat = naive * refined.expected_attempts(rho);
        nss_obs::status!(
            "{rho:>6.0} {naive:>12.1} {refined_lat:>12.1} {:>12.1} {:>12.1}",
            report.cam.latency_phases.mean,
            refined.expected_attempts(rho)
        );
        csv.push(format!(
            "{rho},{naive},{refined_lat},{},{}",
            report.cam.latency_phases.mean,
            refined.expected_attempts(rho)
        ));
    }
    ctx.write_csv(
        "ext_cfm_cost.csv",
        "rho,naive_latency,refined_latency,cam_latency,expected_attempts",
        &csv,
    );
    nss_obs::status!(
        "\nexpected shape: naive CFM underestimates CAM latency with a gap that\n\
         grows with density; the density-aware refinement restores the trend\n\
         (it overestimates because flooding amortizes retries across neighbors)"
    );
}

/// Ext J — broadcast-scheme shootout: PB_CAM vs counter-based vs
/// distance-based under identical CAM semantics.
pub fn ext_schemes(ctx: &Ctx) {
    use nss_sim::protocols::counter::{run_counter_broadcast, CounterConfig};
    use nss_sim::protocols::distance::{run_distance_broadcast, DistanceConfig};
    heading("Ext J: PB_CAM vs counter-based vs distance-based (final reach / broadcasts)");
    nss_obs::status!(
        "{:>6} {:>16} {:>16} {:>16}",
        "rho",
        "pbcam(p=13/rho)",
        "counter(C=3)",
        "distance(0.4r)"
    );
    let runs = if ctx.fast { 3 } else { 10 };
    let factory = SeedFactory::new(ctx.seed);
    let mut csv = Vec::new();
    for rho in [20.0f64, 60.0, 100.0, 140.0] {
        let p = (13.0 / rho).clamp(0.05, 1.0);
        let mut acc = [(0.0f64, 0u64); 3];
        for rep in 0..runs {
            let topo = Topology::build(
                &Deployment::disk(5, 1.0, rho).sample(factory.seed(Stream::Deployment, rep)),
            );
            let seed = factory.seed(Stream::Protocol, rep);
            let t = Executor::new(&topo)
                .gossip(GossipConfig::pb_cam(p))
                .run(seed);
            acc[0].0 += t.final_reachability();
            acc[0].1 += t.total_broadcasts();
            let t = run_counter_broadcast(&topo, &CounterConfig::paper(3), seed);
            acc[1].0 += t.final_reachability();
            acc[1].1 += t.total_broadcasts();
            let t = run_distance_broadcast(&topo, &DistanceConfig::paper(0.4), seed);
            acc[2].0 += t.final_reachability();
            acc[2].1 += t.total_broadcasts();
        }
        let fmt =
            |(r, b): (f64, u64)| format!("{:.2}/{:>6.0}", r / runs as f64, b as f64 / runs as f64);
        nss_obs::status!(
            "{rho:>6.0} {:>16} {:>16} {:>16}",
            fmt(acc[0]),
            fmt(acc[1]),
            fmt(acc[2])
        );
        csv.push(format!(
            "{rho},{},{},{},{},{},{}",
            acc[0].0 / runs as f64,
            acc[0].1 as f64 / runs as f64,
            acc[1].0 / runs as f64,
            acc[1].1 as f64 / runs as f64,
            acc[2].0 / runs as f64,
            acc[2].1 as f64 / runs as f64
        ));
    }
    ctx.write_csv(
        "ext_schemes.csv",
        "rho,pbcam_reach,pbcam_tx,counter_reach,counter_tx,distance_reach,distance_tx",
        &csv,
    );
    nss_obs::status!(
        "\nnote: under Assumption-6 CAM, duplicate receptions mostly COLLIDE, so\n\
         duplicate-driven suppression (counter/distance) rarely triggers and both\n\
         schemes spend nearly flooding-level traffic — PB_CAM's coin flip is the\n\
         only thinning that needs no clean duplicates. (Under CFM the suppression\n\
         schemes shine; see their unit tests.)"
    );
}

/// Ext K — unicast convergecast: data gathering up the BFS tree under CAM.
pub fn ext_convergecast(ctx: &Ctx) {
    use nss_sim::protocols::convergecast::{run_convergecast, ConvergecastConfig};
    heading("Ext K: unicast convergecast (data gathering) under CAM");
    nss_obs::status!(
        "{:>6} {:>10} {:>10} {:>12} {:>10}",
        "rho",
        "reports",
        "delivered",
        "transmissions",
        "phases"
    );
    let runs = if ctx.fast { 2 } else { 5 };
    let factory = SeedFactory::new(ctx.seed);
    let mut csv = Vec::new();
    for rho in [20.0f64, 40.0, 60.0] {
        let mut reach = 0usize;
        let mut deliv = 0usize;
        let mut tx = 0u64;
        let mut phases = 0usize;
        for rep in 0..runs {
            let topo = Topology::build(
                &Deployment::disk(4, 1.0, rho).sample(factory.seed(Stream::Deployment, rep)),
            );
            let out = run_convergecast(
                &topo,
                &ConvergecastConfig::default(),
                factory.seed(Stream::Protocol, rep),
            );
            reach += out.reachable;
            deliv += out.delivered;
            tx += out.transmissions;
            phases += out.phases;
        }
        nss_obs::status!(
            "{rho:>6.0} {:>10} {:>10} {:>12} {:>10}",
            reach / runs as usize,
            deliv / runs as usize,
            tx / runs,
            phases / runs as usize
        );
        csv.push(format!(
            "{rho},{},{},{},{}",
            reach / runs as usize,
            deliv / runs as usize,
            tx / runs,
            phases / runs as usize
        ));
    }
    ctx.write_csv(
        "ext_convergecast.csv",
        "rho,reports,delivered,transmissions,phases",
        &csv,
    );
    nss_obs::status!("\nexpected shape: full delivery; transmissions grow superlinearly with\ndensity (funnel contention near the source forces retries)");
}

/// Ext L — failure injection: PB_CAM reachability under per-phase node
/// deaths (sensitivity to the paper's stable-snapshot Assumption 5).
pub fn ext_failures(ctx: &Ctx) {
    heading("Ext L: PB_CAM under per-phase node failures");
    nss_obs::status!(
        "{:>8} {:>12} {:>12} {:>12}",
        "q_fail",
        "rho=40",
        "rho=80",
        "rho=140"
    );
    let runs = if ctx.fast { 3 } else { 10 };
    let factory = SeedFactory::new(ctx.seed);
    let mut csv = Vec::new();
    for q in [0.0, 0.02, 0.05, 0.1, 0.2] {
        let mut row = format!("{q}");
        nss_obs::status_inline!("{q:>8.2}");
        for rho in [40.0f64, 80.0, 140.0] {
            let p = (13.0 / rho).clamp(0.05, 1.0);
            let mut total = 0.0;
            for rep in 0..runs {
                let topo = Topology::build(
                    &Deployment::disk(5, 1.0, rho).sample(factory.seed(Stream::Deployment, rep)),
                );
                let mut cfg = GossipConfig::pb_cam(p);
                cfg.node_failure_per_phase = q;
                total += Executor::new(&topo)
                    .gossip(cfg)
                    .run(factory.seed(Stream::Protocol, rep))
                    .final_reachability();
            }
            let mean = total / runs as f64;
            nss_obs::status_inline!(" {mean:>12.3}");
            row.push_str(&format!(",{mean}"));
        }
        nss_obs::status!();
        csv.push(row);
    }
    ctx.write_csv(
        "ext_failures.csv",
        "q_fail,reach_rho40,reach_rho80,reach_rho140",
        &csv,
    );
    nss_obs::status!("\nexpected shape: graceful degradation; denser networks tolerate more\nfailure (redundant relays), validating Assumption 5 as a mild idealization");
}

/// Ext M — TDMA (CFM via time diversity, §3.2.1) vs CSMA-style CAM
/// flooding: reliability vs latency, quantified.
pub fn ext_tdma(ctx: &Ctx) {
    use nss_sim::tdma::TdmaSchedule;
    heading("Ext M: TDMA-implemented CFM flooding vs CAM flooding");
    nss_obs::status!(
        "{:>6} {:>8} {:>12} {:>12} {:>12} {:>12}",
        "rho",
        "frame",
        "tdma_slots",
        "tdma_reach",
        "cam_slots",
        "cam_reach"
    );
    let runs = if ctx.fast { 2 } else { 5 };
    let factory = SeedFactory::new(ctx.seed);
    let mut csv = Vec::new();
    for rho in [20.0f64, 60.0, 100.0, 140.0] {
        let mut frame = 0u64;
        let mut tdma_slots = 0u64;
        let mut tdma_reach = 0.0;
        let mut cam_slots = 0u64;
        let mut cam_reach = 0.0;
        for rep in 0..runs {
            let topo = Topology::build(
                &Deployment::disk(4, 1.0, rho).sample(factory.seed(Stream::Deployment, rep)),
            );
            let schedule = TdmaSchedule::build(&topo);
            let out = Executor::new(&topo).run_tdma(&schedule);
            assert_eq!(out.collisions, 0, "schedule must be collision-free");
            frame += u64::from(out.frame_len);
            tdma_slots += out.slots_elapsed;
            tdma_reach += out.reachability();
            let trace = Executor::new(&topo)
                .gossip(GossipConfig::flooding_cam())
                .run(factory.seed(Stream::Protocol, rep));
            cam_slots += trace.phases() as u64 * 3; // s = 3 slots per phase
            cam_reach += trace.final_reachability();
        }
        let r = runs as f64;
        nss_obs::status!(
            "{rho:>6.0} {:>8.0} {:>12.0} {:>12.3} {:>12.0} {:>12.3}",
            frame as f64 / r,
            tdma_slots as f64 / r,
            tdma_reach / r,
            cam_slots as f64 / r,
            cam_reach / r
        );
        csv.push(format!(
            "{rho},{},{},{},{},{}",
            frame as f64 / r,
            tdma_slots as f64 / r,
            tdma_reach / r,
            cam_slots as f64 / r,
            cam_reach / r
        ));
    }
    ctx.write_csv(
        "ext_tdma.csv",
        "rho,frame_len,tdma_slots,tdma_reach,cam_slots,cam_reach",
        &csv,
    );
    nss_obs::status!(
        "\nexpected shape: TDMA reaches the full component with zero collisions but\n\
         its frame (≈ distance-2 degree ≈ 4ρ) makes dense-network latency explode —\n\
         the affordability warning of §3.2.1, quantified"
    );
}

/// Ext N — jitter-slot ablation: how the optimum depends on `s` (the paper
/// fixes s = 3 without comment).
pub fn ext_slots(ctx: &Ctx) {
    heading("Ext N: jitter-slot count ablation (analysis, rho = 80)");
    nss_obs::status!(
        "{:>4} {:>8} {:>12} {:>12}",
        "s",
        "p*",
        "reach@5ph",
        "flooding@5ph"
    );
    let obj = Objective::MaxReachAtLatency {
        phases: LATENCY_BUDGET,
    };
    let grid = ctx.analysis_grid();
    let mut csv = Vec::new();
    for s in [1u32, 2, 3, 4, 6, 8] {
        let mut cfg = ctx.ring_base();
        cfg.rho = 80.0;
        cfg.s = s;
        let sweep = ProbabilitySweep::run(cfg, &grid);
        let opt = sweep.optimum(obj).unwrap();
        let flooding = {
            let mut f = cfg;
            f.prob = 1.0;
            nss_analysis::ring_model::RingModel::cached(f)
                .run()
                .phase_series()
                .reachability_at_latency(LATENCY_BUDGET)
        };
        nss_obs::status!(
            "{s:>4} {:>8.2} {:>12.3} {flooding:>12.3}",
            opt.prob,
            opt.value
        );
        csv.push(format!("{s},{},{},{flooding}", opt.prob, opt.value));
    }
    ctx.write_csv("ext_slots.csv", "s,p_opt,reach_opt,flooding_reach", &csv);
    nss_obs::status!(
        "\nexpected shape: more jitter slots absorb more contention, raising both\n\
         the optimal probability and the flooding baseline; the p*-vs-s trend\n\
         shows s=3 is a middling choice, not a special one"
    );
}

/// Ext O — heterogeneous density (§6's motivating scenario): clustered
/// hotspots over a sparse background. Compares a single fixed probability,
/// the globally-adaptive rule, and the per-node spatially-adaptive rule.
pub fn ext_hetero(ctx: &Ctx) {
    use nss_core::adaptive::{per_node_probabilities, AdaptiveController};
    use nss_model::deployment::ClusterDeployment;
    use nss_sim::probe::probe_per_node_success;

    heading("Ext O: clustered density — fixed vs global-adaptive vs per-node adaptive");
    let mut base = ctx.ring_base();
    base.prob = 1.0;
    let controller = AdaptiveController::calibrate(base, &[40.0, 80.0, 120.0], LATENCY_BUDGET);
    nss_obs::status!("calibrated ratio = {:.2}", controller.ratio);

    let runs = if ctx.fast { 3 } else { 10 };
    let factory = SeedFactory::new(ctx.seed);
    nss_obs::status!(
        "{:>10} {:>12} {:>13} {:>13} {:>13}",
        "contrast",
        "mean_deg",
        "fixed 5ph/fin",
        "glob 5ph/fin",
        "node 5ph/fin"
    );
    let mut csv = Vec::new();
    // Sweep hotspot contrast: children per cluster grows, background thins.
    for &(children, bg) in &[(40.0, 3.0), (80.0, 2.0), (160.0, 1.0)] {
        let cdep = ClusterDeployment::new(5, 1.0, 6, children, 1.0, bg);
        let dep = Deployment::Cluster(cdep);
        let mut deg_sum = 0.0;
        let mut fixed = (0.0, 0.0); // (reach@5, final)
        let mut global = (0.0, 0.0);
        let mut local = (0.0, 0.0);
        for rep in 0..runs {
            let topo = Topology::build(&dep.sample(factory.seed(Stream::Deployment, rep)));
            deg_sum += topo.mean_degree();
            let seed = factory.seed(Stream::Protocol, rep);
            let eval = |trace: nss_sim::trace::SimTrace| {
                let s = trace.phase_series();
                (
                    s.reachability_at_latency(LATENCY_BUDGET),
                    s.final_reachability(),
                )
            };

            // (a) fixed p tuned for the MEAN density via the 13/rho rule.
            let p_fixed = (13.0 / topo.mean_degree().max(1.0)).clamp(0.02, 1.0);
            let (a, b) = eval(
                Executor::new(&topo)
                    .gossip(GossipConfig::pb_cam(p_fixed))
                    .run(seed),
            );
            fixed.0 += a;
            fixed.1 += b;

            // (b) global adaptive: one measured success rate for everyone.
            let rates = probe_per_node_success(
                &topo,
                3,
                if ctx.fast { 1 } else { 2 },
                factory.seed(Stream::Jitter, rep),
            );
            let global_sr = rates.iter().sum::<f64>() / rates.len() as f64;
            let p_global = controller.probability(global_sr);
            let (a, b) = eval(
                Executor::new(&topo)
                    .gossip(GossipConfig::pb_cam(p_global))
                    .run(seed),
            );
            global.0 += a;
            global.1 += b;

            // (c) per-node adaptive: each node from its own measured rate.
            let probs = per_node_probabilities(&controller, &rates);
            let (a, b) = eval(
                Executor::new(&topo)
                    .gossip(GossipConfig::pb_cam(0.5))
                    .per_node_probs(probs)
                    .run(seed),
            );
            local.0 += a;
            local.1 += b;
        }
        let r = runs as f64;
        let label = format!("{children:.0}x/{bg:.0}");
        nss_obs::status!(
            "{label:>10} {:>12.1} {:>6.3}/{:<6.3} {:>6.3}/{:<6.3} {:>6.3}/{:<6.3}",
            deg_sum / r,
            fixed.0 / r,
            fixed.1 / r,
            global.0 / r,
            global.1 / r,
            local.0 / r,
            local.1 / r
        );
        csv.push(
            format!(
                "{children},{bg},{},{},{},{},{},{}",
                deg_sum / r,
                fixed.0 / r,
                fixed.1 / r,
                global.0 / r,
                global.1 / r,
                local.0 / r
            ) + &format!(",{}", local.1 / r),
        );
    }
    ctx.write_csv(
        "ext_hetero.csv",
        "children_per_cluster,background_density,mean_degree,fixed_reach5,fixed_final,global_reach5,global_final,pernode_reach5,pernode_final",
        &csv,
    );
    nss_obs::status!(
        "\nmeasured shape: on FINAL coverage the per-node rule dominates (hotspot\n\
         nodes throttle down, sparse bridges keep relaying), while staying\n\
         competitive within the 5-phase budget — the practical payoff §6 claims\n\
         for success-rate-driven tuning under density variation"
    );
}

/// Ext P — field-size ablation: the paper fixes P = 5; how do the optimal
/// probability and the plateau depend on the field radius?
pub fn ext_fieldsize(ctx: &Ctx) {
    heading("Ext P: field-size ablation (analysis, rho = 80)");
    nss_obs::status!(
        "{:>4} {:>8} {:>8} {:>12} {:>12}",
        "P",
        "N",
        "p*",
        "reach@P+1ph",
        ""
    );
    let grid = ctx.analysis_grid();
    let mut csv = Vec::new();
    for p_rings in [3u32, 5, 8, 10] {
        let mut cfg = ctx.ring_base();
        cfg.rho = 80.0;
        cfg.p = p_rings;
        // Budget scaled with the field: the wave needs ≥ P phases to cross.
        let budget = f64::from(p_rings) + 1.0;
        let sweep = ProbabilitySweep::run(cfg, &grid);
        let opt = sweep
            .optimum(Objective::MaxReachAtLatency { phases: budget })
            .unwrap();
        nss_obs::status!(
            "{p_rings:>4} {:>8.0} {:>8.2} {:>12.3}",
            cfg.n_total(),
            opt.prob,
            opt.value
        );
        csv.push(format!(
            "{p_rings},{},{},{}",
            cfg.n_total(),
            opt.prob,
            opt.value
        ));
    }
    ctx.write_csv("ext_fieldsize.csv", "P,N,p_opt,reach_opt", &csv);
    nss_obs::status!(
        "
measured shape: the optimal probability is set by the LOCAL contention
         (rho), not the field size — p* is flat in P; achievable reachability
         even ticks up with P as the under-covered border shrinks relatively"
    );
}

/// Ext G — μ-mode ablation: the paper's interpolation vs the Poisson
/// mixture at the optimum.
pub fn ext_mu_mode(ctx: &Ctx) {
    heading("Ext G: mu-evaluation ablation (interpolated vs Poisson mixture)");
    nss_obs::status!(
        "{:>6} {:>10} {:>10} {:>10} {:>10}",
        "rho",
        "p*_interp",
        "reach_i",
        "p*_pois",
        "reach_p"
    );
    let obj = Objective::MaxReachAtLatency {
        phases: LATENCY_BUDGET,
    };
    let grid = ctx.analysis_grid();
    let mut csv = Vec::new();
    for rho in ctx.rhos() {
        let mut interp: RingModelConfig = ctx.ring_base();
        interp.rho = rho;
        let a = ProbabilitySweep::run(interp, &grid).optimum(obj).unwrap();
        let mut pois = interp;
        pois.mu_mode = MuMode::Poisson;
        let b = ProbabilitySweep::run(pois, &grid).optimum(obj).unwrap();
        nss_obs::status!(
            "{rho:>6.0} {:>10.2} {:>10.3} {:>10.2} {:>10.3}",
            a.prob,
            a.value,
            b.prob,
            b.value
        );
        csv.push(format!(
            "{rho},{},{},{},{}",
            a.prob, a.value, b.prob, b.value
        ));
    }
    ctx.write_csv(
        "ext_mu_mode.csv",
        "rho,p_opt_interp,reach_interp,p_opt_poisson,reach_poisson",
        &csv,
    );
    nss_obs::status!("\nexpected shape: both modes agree on the trend; levels differ slightly");
}
