//! Ext — Monte-Carlo connectivity thresholds for random unit-disk fields.
//!
//! Gupta–Kumar give the critical communication radius for asymptotic
//! connectivity of `n` nodes uniform in a unit-area disk as
//! `r_crit(n) = sqrt(ln n / (π n))`. This experiment measures the
//! probability that the sampled unit-disk graph is connected at radii
//! `f · r_crit(n)` for factors around 1, across a geometric ladder of
//! field sizes — an empirical radius-vs-n connectivity curve that bounds
//! when the paper's "connected w.h.p." regime (Assumption 1 plus the
//! ρ ≥ 20 density floor) actually holds for finite fields.
//!
//! Output: `ext_connectivity.csv` (one row per `(n, factor)` cell) and
//! `ext_connectivity.svg` (one series per factor over the `n` axis). The
//! expected shape: the `f < 1` curves decay toward 0 with `n`, the
//! `f > 1` curves climb toward 1, and `f = 1` lags below 1 at finite `n`
//! (the Gupta–Kumar guarantee is asymptotic: connectivity w.h.p. needs
//! `π n r² = ln n + c_n` with `c_n → ∞`, so the bare critical radius is
//! the lower edge of the transition, not its midpoint).

use crate::common::{heading, Ctx};
use nss_model::deployment::DeployedNetwork;
use nss_model::geometry::Point2;
use nss_model::rng::{SeedFactory, Stream};
use nss_model::topology::Topology;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::f64::consts::PI;

/// Radius multipliers applied to `r_crit(n)`.
const FACTORS: [f64; 5] = [0.7, 0.85, 1.0, 1.15, 1.3];

/// The Gupta–Kumar critical radius for `n` nodes in a unit-area disk.
fn r_crit(n: usize) -> f64 {
    ((n as f64).ln() / (PI * n as f64)).sqrt()
}

/// Samples `n` points uniform in the unit-area disk (radius 1/√π).
fn sample_unit_disk(n: usize, seed: u64) -> Vec<Point2> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let field_r = 1.0 / PI.sqrt();
    (0..n)
        .map(|_| {
            let u: f64 = rng.random();
            let theta: f64 = rng.random_range(0.0..(2.0 * PI));
            Point2::from_polar(field_r * u.sqrt(), theta)
        })
        .collect()
}

/// Fraction of `trials` deployments whose unit-disk graph is connected.
fn connectivity_rate(n: usize, radius: f64, trials: u32, factory: &SeedFactory) -> f64 {
    let mut connected = 0u32;
    for t in 0..trials {
        let key = ((n as u64) << 20) | u64::from(t);
        let positions = sample_unit_disk(n, factory.seed(Stream::Deployment, key));
        let net = DeployedNetwork::try_from_positions(positions, radius)
            .expect("unit-disk trial fields are far below u32 capacity");
        let topo = Topology::build(&net);
        // Connected ⟺ the component containing node 0 spans the field;
        // component_sizes() reports sizes in discovery order from node 0.
        if topo.component_sizes().first() == Some(&n) {
            connected += 1;
        }
    }
    f64::from(connected) / f64::from(trials)
}

/// Ext — empirical connectivity probability vs `n` at radii `f·r_crit(n)`.
pub fn run(ctx: &Ctx) {
    heading("Ext: Monte-Carlo connectivity threshold (radius vs n)");
    let ns: &[usize] = if ctx.fast {
        &[250, 500, 1000]
    } else {
        &[250, 500, 1000, 2000, 4000]
    };
    let trials = if ctx.fast { 10 } else { 50 };
    let factory = SeedFactory::new(ctx.seed);

    nss_obs::status!(
        "{:>6} {:>10} {}",
        "n",
        "r_crit",
        FACTORS
            .iter()
            .map(|f| format!("{:>8}", format!("f={f}")))
            .collect::<String>()
    );
    let mut csv = Vec::new();
    let mut series: Vec<Vec<(f64, f64)>> = vec![Vec::new(); FACTORS.len()];
    for &n in ns {
        let rc = r_crit(n);
        let mut row = format!("{n:>6} {rc:>10.4}");
        for (fi, &f) in FACTORS.iter().enumerate() {
            let rate = connectivity_rate(n, f * rc, trials, &factory);
            row.push_str(&format!("{rate:>8.2}"));
            series[fi].push((n as f64, rate));
            csv.push(format!("{n},{rc},{f},{},{rate}", f * rc));
        }
        nss_obs::status!("{row}");
    }
    ctx.write_csv(
        "ext_connectivity.csv",
        "n,r_crit,factor,radius,p_connected",
        &csv,
    );

    let mut chart = nss_plot::Chart::new(
        "connectivity probability at f * r_crit(n)",
        "field size n",
        "P(connected)",
    );
    for (fi, &f) in FACTORS.iter().enumerate() {
        chart = chart.with_series(nss_plot::Series::new(format!("f={f}"), series[fi].clone()));
    }
    ctx.write_svg("ext_connectivity.svg", &chart);
    nss_obs::status!(
        "\nexpected shape: f<1 stays near 0, f>1 climbs toward 1; f=1 lags at \
         finite n (the Gupta-Kumar guarantee is asymptotic)"
    );
}
