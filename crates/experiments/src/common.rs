//! Shared infrastructure for the figure-reproduction harness.

use nss_analysis::optimize::ProbabilitySweep;
use nss_analysis::ring_model::RingModelConfig;
use nss_analysis::sweep::DensitySweep;
use nss_model::comm::MediumBackend;
use nss_model::deployment::Deployment;
use nss_model::faults::FaultPlan;
use nss_sim::runner::{ReplicatedTraces, Replication};
use nss_sim::slotted::GossipConfig;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// Calibration values and memoized sweeps threaded between figures.
///
/// Figures run in registry (declaration) order; earlier figures deposit the
/// plateau/budget calibrations later ones consume, and the shared analysis
/// and simulation sweeps are computed at most once per invocation.
struct SharedState {
    analysis: Option<Arc<DensitySweep>>,
    sim: Option<Arc<SimSweep>>,
    /// Reachability plateau target from Fig. 4 (paper default 0.72).
    plateau: f64,
    /// Energy budget for Fig. 7 (paper default 35.0).
    energy_budget: f64,
    /// Simulated plateau target from Fig. 8 (paper default 0.63).
    sim_plateau: f64,
    /// Broadcast budget for Fig. 11 (paper default 80.0).
    sim_budget: f64,
}

impl std::fmt::Debug for SharedState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedState")
            .field("analysis", &self.analysis.is_some())
            .field("sim", &self.sim.is_some())
            .field("plateau", &self.plateau)
            .field("energy_budget", &self.energy_budget)
            .field("sim_plateau", &self.sim_plateau)
            .field("sim_budget", &self.sim_budget)
            .finish()
    }
}

/// Harness-wide options parsed from the command line.
#[derive(Debug, Clone)]
pub struct Ctx {
    /// Output directory for CSV files.
    pub out_dir: PathBuf,
    /// Fast mode: fewer replications / coarser grids for smoke runs.
    pub fast: bool,
    /// Simulation replications per parameter point.
    pub runs: u32,
    /// Worker threads (0 = available parallelism).
    pub threads: usize,
    /// Master seed for all simulations.
    pub seed: u64,
    /// Fault scenario applied to every simulated sweep (`--faults SPEC`);
    /// the empty plan reproduces the fault-free figures bit-for-bit.
    pub faults: FaultPlan,
    /// Physical-layer backend for every simulated sweep (`--medium SPEC`);
    /// the unit-disk default reproduces the paper figures bit-for-bit.
    pub medium: MediumBackend,
    /// Live `/metrics` scrape endpoint for the run (`--metrics-addr`).
    pub metrics_addr: Option<String>,
    /// Flight-recorder dump path (`--trace-out`, Chrome `trace_event` JSON).
    pub trace_out: Option<PathBuf>,
    /// Every artifact written this run (shared across clones so the final
    /// manifest sees all of them).
    artifacts: Arc<Mutex<Vec<PathBuf>>>,
    /// Cross-figure calibrations and memoized sweeps.
    state: Arc<Mutex<SharedState>>,
}

impl Ctx {
    /// Default harness options (paper-fidelity settings).
    pub fn new() -> Self {
        Ctx {
            out_dir: PathBuf::from("results"),
            fast: false,
            runs: 30,
            threads: 0,
            seed: 2005,
            faults: FaultPlan::none(),
            medium: MediumBackend::UnitDisk,
            metrics_addr: None,
            trace_out: None,
            artifacts: Arc::new(Mutex::new(Vec::new())),
            state: Arc::new(Mutex::new(SharedState {
                analysis: None,
                sim: None,
                plateau: 0.72,
                energy_budget: 35.0,
                sim_plateau: 0.63,
                sim_budget: 80.0,
            })),
        }
    }

    /// The shared analytical sweep (Figs. 4–7), computed on first use.
    pub fn analysis(&self) -> Arc<DensitySweep> {
        let mut st = self.state.lock().expect("shared state poisoned");
        if st.analysis.is_none() {
            nss_obs::status_err!("running analytical sweep...");
            let _span = nss_obs::span!("repro.analysis_sweep");
            st.analysis = Some(Arc::new(analysis_sweep(self)));
        }
        st.analysis.clone().expect("just computed")
    }

    /// The shared simulated sweep (Figs. 8–11), computed on first use.
    pub fn sim(&self) -> Arc<SimSweep> {
        let mut st = self.state.lock().expect("shared state poisoned");
        if st.sim.is_none() {
            nss_obs::status_err!(
                "running simulated sweep ({} runs per point)...",
                self.sim_runs()
            );
            let _span = nss_obs::span!("repro.sim_sweep");
            st.sim = Some(Arc::new(sim_sweep(self, false)));
        }
        st.sim.clone().expect("just computed")
    }

    /// Analytical reachability plateau target (set by fig4).
    pub fn plateau(&self) -> f64 {
        self.state.lock().expect("shared state poisoned").plateau
    }

    /// Records the analytical plateau target for later figures.
    pub fn set_plateau(&self, v: f64) {
        self.state.lock().expect("shared state poisoned").plateau = v;
    }

    /// Analytical energy budget (set by fig6).
    pub fn energy_budget(&self) -> f64 {
        self.state
            .lock()
            .expect("shared state poisoned")
            .energy_budget
    }

    /// Records the analytical energy budget for later figures.
    pub fn set_energy_budget(&self, v: f64) {
        self.state
            .lock()
            .expect("shared state poisoned")
            .energy_budget = v;
    }

    /// Simulated reachability plateau target (set by fig8).
    pub fn sim_plateau(&self) -> f64 {
        self.state
            .lock()
            .expect("shared state poisoned")
            .sim_plateau
    }

    /// Records the simulated plateau target for later figures.
    pub fn set_sim_plateau(&self, v: f64) {
        self.state
            .lock()
            .expect("shared state poisoned")
            .sim_plateau = v;
    }

    /// Simulated broadcast budget (set by fig10).
    pub fn sim_budget(&self) -> f64 {
        self.state.lock().expect("shared state poisoned").sim_budget
    }

    /// Records the simulated broadcast budget for later figures.
    pub fn set_sim_budget(&self, v: f64) {
        self.state.lock().expect("shared state poisoned").sim_budget = v;
    }

    /// Paths of every artifact written through this context so far.
    pub fn artifacts(&self) -> Vec<PathBuf> {
        self.artifacts
            .lock()
            .expect("artifact list poisoned")
            .clone()
    }

    fn record_artifact(&self, path: &Path) {
        self.artifacts
            .lock()
            .expect("artifact list poisoned")
            .push(path.to_path_buf());
    }

    /// The density axis (always the paper's 20..140).
    pub fn rhos(&self) -> Vec<f64> {
        DensitySweep::paper_rhos()
    }

    /// The analysis probability grid (fast mode coarsens 0.01 → 0.05).
    pub fn analysis_grid(&self) -> Vec<f64> {
        if self.fast {
            ProbabilitySweep::sim_grid()
        } else {
            ProbabilitySweep::paper_grid()
        }
    }

    /// The simulation probability grid (the paper's 0.05..1.00).
    pub fn sim_grid(&self) -> Vec<f64> {
        ProbabilitySweep::sim_grid()
    }

    /// Simulation replications (fast mode: 5).
    pub fn sim_runs(&self) -> u32 {
        if self.fast {
            5
        } else {
            self.runs
        }
    }

    /// Quadrature points for the analysis (fast mode: 32).
    pub fn quad_points(&self) -> usize {
        if self.fast {
            32
        } else {
            64
        }
    }

    /// Base analytical configuration (the paper's P = 5, s = 3).
    pub fn ring_base(&self) -> RingModelConfig {
        let mut cfg = RingModelConfig::paper(20.0, 0.0);
        cfg.quad_points = self.quad_points();
        cfg
    }

    /// Writes a CSV file into the output directory.
    pub fn write_csv(&self, name: &str, header: &str, rows: &[String]) {
        fs::create_dir_all(&self.out_dir).expect("create results dir");
        let path = self.out_dir.join(name);
        let mut f = fs::File::create(&path).expect("create CSV");
        writeln!(f, "{header}").unwrap();
        for row in rows {
            writeln!(f, "{row}").unwrap();
        }
        self.record_artifact(&path);
        nss_obs::status!("  wrote {}", display_path(&path));
    }

    /// Renders a figure to SVG in the output directory.
    pub fn write_svg(&self, name: &str, chart: &nss_plot::Chart) {
        fs::create_dir_all(&self.out_dir).expect("create results dir");
        let path = self.out_dir.join(name);
        chart.save(&path).expect("write SVG");
        self.record_artifact(&path);
        nss_obs::status!("  wrote {}", display_path(&path));
    }
}

impl Default for Ctx {
    fn default() -> Self {
        Self::new()
    }
}

fn display_path(p: &Path) -> String {
    p.to_string_lossy().into_owned()
}

/// The analytical sweep shared by Figs. 4–7 (computed once per invocation).
pub fn analysis_sweep(ctx: &Ctx) -> DensitySweep {
    DensitySweep::run(
        ctx.ring_base(),
        &ctx.rhos(),
        &ctx.analysis_grid(),
        ctx.threads,
    )
}

/// A full simulated sweep: `grid[rho_idx][p_idx]` of replicated traces.
pub struct SimSweep {
    /// Density axis.
    pub rhos: Vec<f64>,
    /// Probability axis.
    pub probs: Vec<f64>,
    /// Replicated traces per cell.
    pub grid: Vec<Vec<ReplicatedTraces>>,
}

/// Runs the paper's simulation protocol over the (ρ × p) grid.
pub fn sim_sweep(ctx: &Ctx, track_success_rate: bool) -> SimSweep {
    let rhos = ctx.rhos();
    let probs = ctx.sim_grid();
    let mut grid = Vec::with_capacity(rhos.len());
    for (ri, &rho) in rhos.iter().enumerate() {
        let mut row = Vec::with_capacity(probs.len());
        for (pi, &p) in probs.iter().enumerate() {
            let mut gossip = GossipConfig::pb_cam(p);
            gossip.track_success_rate = track_success_rate;
            // Independent seeds per cell, deterministic per master seed.
            let cell_seed = ctx
                .seed
                .wrapping_add((ri as u64) << 32)
                .wrapping_add(pi as u64);
            let rep = Replication::paper(Deployment::disk(5, 1.0, rho), gossip, cell_seed)
                .with_runs(ctx.sim_runs())
                .with_threads(ctx.threads)
                .with_faults(ctx.faults.clone())
                .with_medium(ctx.medium);
            row.push(rep.run());
        }
        grid.push(row);
        nss_obs::status_err!("  simulated rho = {rho}");
    }
    SimSweep { rhos, probs, grid }
}

/// Builds the paper's panel-(a) chart: one series per density over the
/// probability axis; infeasible cells become gaps, as in the paper.
pub fn panel_a_chart(
    title: &str,
    y_label: &str,
    probs: &[f64],
    rhos: &[f64],
    values: &[Vec<Option<f64>>],
) -> nss_plot::Chart {
    let mut chart = nss_plot::Chart::new(title, "broadcast probability p", y_label);
    for (ri, &rho) in rhos.iter().enumerate() {
        let pts: Vec<(f64, Option<f64>)> = probs
            .iter()
            .zip(&values[ri])
            .map(|(&p, &v)| (p, v))
            .collect();
        chart = chart.with_series(nss_plot::Series::with_gaps(format!("rho={rho:.0}"), pts));
    }
    chart
}

/// Builds the paper's panel-(b) chart: the optimal probability (and, when
/// it shares the [0, 1] scale, the achieved metric value) versus density.
pub fn panel_b_chart(
    title: &str,
    value_label: &str,
    optima: &[(f64, f64, f64)],
) -> nss_plot::Chart {
    let popt: Vec<(f64, f64)> = optima.iter().map(|&(rho, p, _)| (rho, p)).collect();
    let vals: Vec<(f64, f64)> = optima.iter().map(|&(rho, _, v)| (rho, v)).collect();
    let mut chart = nss_plot::Chart::new(title, "node density rho", "value")
        .with_series(nss_plot::Series::new("optimal p", popt));
    let vmax = vals.iter().map(|&(_, v)| v).fold(f64::MIN, f64::max);
    if vmax <= 1.2 {
        chart = chart.with_series(nss_plot::Series::new(value_label, vals));
    }
    chart
}

/// Formats an optional value for table display.
pub fn fmt_opt(v: Option<f64>, width: usize, prec: usize) -> String {
    match v {
        Some(x) => format!("{x:>width$.prec$}"),
        None => format!("{:>width$}", "-"),
    }
}

/// Prints a section header (suppressed under `--quiet`).
pub fn heading(title: &str) {
    nss_obs::status!("\n=== {title} ===");
}
