//! Fig. 10 — simulated energy cost (broadcast count) of PB_CAM to the
//! simulated plateau reachability (paper: 63%).
//!
//! Paper findings: energy-optimal probability within 0.2 across densities;
//! corresponding broadcast count ≈ 80.

use crate::common::{fmt_opt, heading, Ctx, SimSweep};

/// Runs the Fig. 10 reproduction. Returns per-density optima `(ρ, p*, M*)`.
pub fn run(ctx: &Ctx, sweep: &SimSweep, target: f64) -> Vec<(f64, f64, f64)> {
    heading(&format!(
        "Fig 10(a): simulated broadcast count to {:.0}% reachability",
        target * 100.0
    ));
    nss_obs::status_inline!("{:>6}", "p");
    for &rho in &sweep.rhos {
        nss_obs::status_inline!(" {:>9}", format!("rho={rho:.0}"));
    }
    nss_obs::status!();
    let mut csv = Vec::new();
    let mut means: Vec<Vec<Option<f64>>> = vec![vec![None; sweep.probs.len()]; sweep.rhos.len()];
    for (pi, &p) in sweep.probs.iter().enumerate() {
        nss_obs::status_inline!("{p:>6.2}");
        let mut row = format!("{p}");
        for ri in 0..sweep.rhos.len() {
            let (s, frac) = sweep.grid[ri][pi].broadcasts_to_reach(target);
            let v = if frac >= 0.5 { Some(s.mean) } else { None };
            means[ri][pi] = v;
            nss_obs::status_inline!(" {}", fmt_opt(v, 9, 1));
            row.push_str(&format!(
                ",{},{:.3}",
                v.map_or(String::new(), |x| format!("{x:.3}")),
                frac
            ));
        }
        nss_obs::status!();
        csv.push(row);
    }
    let header = format!(
        "p,{}",
        sweep
            .rhos
            .iter()
            .map(|r| format!("broadcasts_rho{r:.0},feasible_rho{r:.0}"))
            .collect::<Vec<_>>()
            .join(",")
    );
    ctx.write_csv("fig10a_sim_broadcasts.csv", &header, &csv);

    heading("Fig 10(b): simulated energy-optimal probability and broadcast count");
    nss_obs::status!("{:>6} {:>8} {:>10}", "rho", "p*", "M*");
    let mut out = Vec::new();
    let mut csv = Vec::new();
    for (ri, &rho) in sweep.rhos.iter().enumerate() {
        let best = means[ri]
            .iter()
            .enumerate()
            .filter_map(|(pi, v)| v.map(|x| (pi, x)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("no NaN"));
        match best {
            Some((pi, m)) => {
                let p = sweep.probs[pi];
                nss_obs::status!("{rho:>6.0} {p:>8.2} {m:>10.1}");
                csv.push(format!("{rho},{p},{m}"));
                out.push((rho, p, m));
            }
            None => {
                nss_obs::status!("{rho:>6.0} {:>8} {:>10}", "-", "-");
                csv.push(format!("{rho},,"));
            }
        }
    }
    ctx.write_csv("fig10b_sim_optimal.csv", "rho,p_opt,broadcasts_opt", &csv);
    ctx.write_svg(
        "fig10a.svg",
        &crate::common::panel_a_chart(
            &format!(
                "Fig 10(a): simulated broadcasts to {:.0}% reachability",
                target * 100.0
            ),
            "broadcast count M",
            &sweep.probs,
            &sweep.rhos,
            &means,
        ),
    );
    ctx.write_svg(
        "fig10b.svg",
        &crate::common::panel_b_chart(
            "Fig 10(b): simulated energy-optimal probability",
            "M at p*",
            &out,
        ),
    );
    out
}
