//! Fig. 8 — simulated reachability of PB_CAM within 5 time phases
//! (30-run averages; the GloMoSim experiment of the paper, §5).
//!
//! Paper findings: matches the analytical Fig. 4 shape; achievable
//! reachability ≈ constant across ρ (63% in the paper's calibration).

use crate::common::{heading, Ctx, SimSweep};
use crate::fig04::LATENCY_BUDGET;

/// Runs the Fig. 8 reproduction; returns per-density optima `(ρ, p*,
/// reach*)`.
pub fn run(ctx: &Ctx, sweep: &SimSweep) -> Vec<(f64, f64, f64)> {
    heading("Fig 8(a): simulated reachability within 5 phases (mean over runs)");
    nss_obs::status_inline!("{:>6}", "p");
    for &rho in &sweep.rhos {
        nss_obs::status_inline!(" {:>8}", format!("rho={rho:.0}"));
    }
    nss_obs::status!();
    let mut csv = Vec::new();
    let mut means = vec![vec![0.0f64; sweep.probs.len()]; sweep.rhos.len()];
    for (pi, &p) in sweep.probs.iter().enumerate() {
        nss_obs::status_inline!("{p:>6.2}");
        let mut row = format!("{p}");
        for ri in 0..sweep.rhos.len() {
            let s = sweep.grid[ri][pi].reachability_at_latency(LATENCY_BUDGET);
            means[ri][pi] = s.mean;
            nss_obs::status_inline!(" {:>8.3}", s.mean);
            row.push_str(&format!(",{:.6},{:.6}", s.mean, s.std_dev));
        }
        nss_obs::status!();
        csv.push(row);
    }
    let header = format!(
        "p,{}",
        sweep
            .rhos
            .iter()
            .map(|r| format!("reach_rho{r:.0},std_rho{r:.0}"))
            .collect::<Vec<_>>()
            .join(",")
    );
    ctx.write_csv("fig08a_sim_reachability.csv", &header, &csv);

    heading("Fig 8(b): simulated optimal probability and reachability");
    nss_obs::status!("{:>6} {:>8} {:>10}", "rho", "p*", "reach*");
    let mut out = Vec::new();
    let mut csv = Vec::new();
    for (ri, &rho) in sweep.rhos.iter().enumerate() {
        let (pi, &best) = means[ri]
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("no NaN means"))
            .expect("non-empty grid");
        let p = sweep.probs[pi];
        nss_obs::status!("{rho:>6.0} {p:>8.2} {best:>10.3}");
        csv.push(format!("{rho},{p},{best}"));
        out.push((rho, p, best));
    }
    ctx.write_csv("fig08b_sim_optimal.csv", "rho,p_opt,reach_opt", &csv);
    let opt_values: Vec<Vec<Option<f64>>> = means
        .iter()
        .map(|row| row.iter().map(|&v| Some(v)).collect())
        .collect();
    ctx.write_svg(
        "fig08a.svg",
        &crate::common::panel_a_chart(
            "Fig 8(a): simulated reachability within 5 phases",
            "reachability",
            &sweep.probs,
            &sweep.rhos,
            &opt_values,
        ),
    );
    ctx.write_svg(
        "fig08b.svg",
        &crate::common::panel_b_chart(
            "Fig 8(b): simulated optimal probability",
            "reachability at p*",
            &out,
        ),
    );
    out
}
