//! Fig. 7 — analytical reachability of PB_CAM under a broadcast budget.
//!
//! The paper allows 35 broadcasts (≈ its Fig. 6 optimum) and finds the
//! optimal probability close to 0 and near-identical to Fig. 6(b) (the
//! §4.1 duality), with maximal reachability ≈ 70% vs < 20% for flooding.
//! The budget passed in is our own Fig. 6 optimum, keeping the duality
//! visible on our calibration; the paper's 35 is reported alongside.

use crate::common::{fmt_opt, heading, Ctx};
use nss_analysis::optimize::Objective;
use nss_analysis::sweep::DensitySweep;

/// Runs the Fig. 7 reproduction with the given broadcast budget. Returns
/// per-density optima `(ρ, p*, reach*)`.
pub fn run(ctx: &Ctx, sweep: &DensitySweep, budget: f64) -> Vec<(f64, f64, f64)> {
    heading(&format!(
        "Fig 7(a): analytical reachability using <= {budget:.0} broadcasts"
    ));
    let obj = Objective::MaxReachUnderBudget { budget };
    let values = sweep.evaluate(obj);

    nss_obs::status_inline!("{:>6}", "p");
    for &rho in &sweep.rhos {
        nss_obs::status_inline!(" {:>8}", format!("rho={rho:.0}"));
    }
    nss_obs::status!();
    let mut csv = Vec::new();
    for (pi, &p) in sweep.probs.iter().enumerate() {
        nss_obs::status_inline!("{p:>6.2}");
        let mut row = format!("{p}");
        for ri in 0..sweep.rhos.len() {
            let v = values[ri][pi];
            nss_obs::status_inline!(" {}", fmt_opt(v, 8, 3));
            row.push_str(&format!(
                ",{}",
                v.map_or(String::new(), |x| format!("{x:.6}"))
            ));
        }
        nss_obs::status!();
        csv.push(row);
    }
    let header = format!(
        "p,{}",
        sweep
            .rhos
            .iter()
            .map(|r| format!("reach_rho{r:.0}"))
            .collect::<Vec<_>>()
            .join(",")
    );
    ctx.write_csv("fig07a_reach_budget.csv", &header, &csv);

    heading("Fig 7(b): optimal probability and corresponding reachability");
    nss_obs::status!("{:>6} {:>8} {:>10}", "rho", "p*", "reach*");
    let mut out = Vec::new();
    let mut csv = Vec::new();
    for (rho, opt) in sweep.optima(obj) {
        let opt = opt.expect("max objective is always feasible");
        nss_obs::status!("{rho:>6.0} {:>8.2} {:>10.3}", opt.prob, opt.value);
        csv.push(format!("{rho},{},{}", opt.prob, opt.value));
        out.push((rho, opt.prob, opt.value));
    }
    ctx.write_csv("fig07b_optimal.csv", "rho,p_opt,reach_opt", &csv);
    ctx.write_svg(
        "fig07a.svg",
        &crate::common::panel_a_chart(
            &format!("Fig 7(a): analytical reachability within {budget:.0} broadcasts"),
            "reachability",
            &sweep.probs,
            &sweep.rhos,
            &values,
        ),
    );
    ctx.write_svg(
        "fig07b.svg",
        &crate::common::panel_b_chart("Fig 7(b): optimal probability", "reachability at p*", &out),
    );

    // Contrast with flooding under the same budget (paper: < 20%).
    if let Some(last_p_idx) = sweep.probs.iter().position(|&p| (p - 1.0).abs() < 1e-9) {
        let flooding: Vec<f64> = (0..sweep.rhos.len())
            .map(|ri| values[ri][last_p_idx].unwrap_or(0.0))
            .collect();
        nss_obs::status!(
            "\nflooding (p=1) under the same budget: {:?}",
            flooding
                .iter()
                .map(|v| (v * 1000.0).round() / 1000.0)
                .collect::<Vec<_>>()
        );
    }
    out
}
