//! Fig. 4 — analytical reachability of PB_CAM within 5 time phases.
//!
//! (a) reachability vs (ρ, p); (b) the optimal probability per density with
//! the reachability it achieves. Paper findings: bell-shaped curves, p*
//! decreasing rapidly with ρ, achieved reachability ≈ constant (~0.72 in
//! the paper's calibration), flooding far below the optimum at high ρ.

use crate::common::{fmt_opt, heading, Ctx};
use nss_analysis::optimize::Objective;
use nss_analysis::sweep::DensitySweep;

/// Latency budget used throughout Figs. 4, 5, and 12 (paper: 5 phases).
pub const LATENCY_BUDGET: f64 = 5.0;

/// Runs the Fig. 4 reproduction; returns the per-density optima `(ρ, p*,
/// reach*)` for downstream figures.
pub fn run(ctx: &Ctx, sweep: &DensitySweep) -> Vec<(f64, f64, f64)> {
    heading("Fig 4(a): analytical reachability within 5 phases");
    let obj = Objective::MaxReachAtLatency {
        phases: LATENCY_BUDGET,
    };
    let values = sweep.evaluate(obj);

    // Panel (a): one series per density.
    nss_obs::status_inline!("{:>6}", "p");
    for &rho in &sweep.rhos {
        nss_obs::status_inline!(" {:>8}", format!("rho={rho:.0}"));
    }
    nss_obs::status!();
    let mut csv = Vec::new();
    for (pi, &p) in sweep.probs.iter().enumerate() {
        nss_obs::status_inline!("{p:>6.2}");
        let mut row = format!("{p}");
        for ri in 0..sweep.rhos.len() {
            let v = values[ri][pi];
            nss_obs::status_inline!(" {}", fmt_opt(v, 8, 3));
            row.push_str(&format!(
                ",{}",
                v.map_or(String::new(), |x| format!("{x:.6}"))
            ));
        }
        nss_obs::status!();
        csv.push(row);
    }
    let header = format!(
        "p,{}",
        sweep
            .rhos
            .iter()
            .map(|r| format!("reach_rho{r:.0}"))
            .collect::<Vec<_>>()
            .join(",")
    );
    ctx.write_csv("fig04a_reachability.csv", &header, &csv);

    // Panel (b): optimal probability and achieved reachability.
    heading("Fig 4(b): optimal probability and corresponding reachability");
    nss_obs::status!("{:>6} {:>8} {:>10}", "rho", "p*", "reach*");
    let mut out = Vec::new();
    let mut csv = Vec::new();
    for (rho, opt) in sweep.optima(obj) {
        let opt = opt.expect("max objective is always feasible");
        nss_obs::status!("{rho:>6.0} {:>8.2} {:>10.3}", opt.prob, opt.value);
        csv.push(format!("{rho},{},{}", opt.prob, opt.value));
        out.push((rho, opt.prob, opt.value));
    }
    ctx.write_csv("fig04b_optimal.csv", "rho,p_opt,reach_opt", &csv);
    ctx.write_svg(
        "fig04a.svg",
        &crate::common::panel_a_chart(
            "Fig 4(a): analytical reachability within 5 phases",
            "reachability",
            &sweep.probs,
            &sweep.rhos,
            &values,
        ),
    );
    ctx.write_svg(
        "fig04b.svg",
        &crate::common::panel_b_chart("Fig 4(b): optimal probability", "reachability at p*", &out),
    );

    // Headline check: p* decreasing, plateau flat.
    let first = out.first().expect("non-empty density axis");
    let last = out.last().expect("non-empty density axis");
    nss_obs::status!(
        "\nshape: p* {:.2} -> {:.2} (decreasing: {}), plateau spread {:.3}",
        first.1,
        last.1,
        last.1 < first.1,
        out.iter().map(|o| o.2).fold(f64::MIN, f64::max)
            - out.iter().map(|o| o.2).fold(f64::MAX, f64::min)
    );
    out
}
