//! The figure registry: every artifact the `repro` binary can produce is a
//! [`Figure`] entry here, dispatched in declaration order.
//!
//! Declaration order matters: earlier figures deposit calibration values
//! (the Fig. 4 plateau, the Fig. 6 energy budget, their simulated
//! counterparts) into the shared [`crate::common::Ctx`] state that
//! later figures consume — exactly the paper's "analyze, then refine the
//! target" workflow. A name-sorted dispatch (`fig10` < `fig4`
//! lexicographically) would silently break that threading, which is why
//! the registry is a slice, not a sorted map.

use crate::common::Ctx;
use crate::{
    ext_connectivity, ext_faults, ext_sinr, extensions, fig04, fig05, fig06, fig07, fig08, fig09,
    fig10, fig11, fig12, report,
};

/// One reproducible artifact of the harness.
pub trait Figure {
    /// CLI name (`fig4`, `ext-faults`, …).
    fn name(&self) -> &'static str;
    /// Selection group (`analysis`, `sim`, `ext`, `misc`).
    fn group(&self) -> &'static str;
    /// Produces the figure's artifacts.
    fn run(&self, ctx: &Ctx);
}

/// A registry entry: a function-pointer-backed [`Figure`].
pub struct FigureDef {
    name: &'static str,
    group: &'static str,
    /// One-line description for `repro list`.
    describe: &'static str,
    /// Span name recorded around the run.
    span: &'static str,
    runner: fn(&Ctx),
}

impl Figure for FigureDef {
    fn name(&self) -> &'static str {
        self.name
    }

    fn group(&self) -> &'static str {
        self.group
    }

    fn run(&self, ctx: &Ctx) {
        let _span = nss_obs::span!(self.span);
        (self.runner)(ctx);
    }
}

impl FigureDef {
    /// One-line description for `repro list`.
    pub fn describe(&self) -> &'static str {
        self.describe
    }
}

macro_rules! fig {
    ($name:literal, $group:literal, $desc:literal, $span:literal, $runner:expr) => {
        FigureDef {
            name: $name,
            group: $group,
            describe: $desc,
            span: $span,
            runner: $runner,
        }
    };
}

fn run_fig4(ctx: &Ctx) {
    let optima = fig04::run(ctx, &ctx.analysis());
    if !optima.is_empty() {
        ctx.set_plateau(optima.iter().map(|o| o.2).fold(f64::MAX, f64::min) * 0.999);
    }
}

fn run_fig5(ctx: &Ctx) {
    fig05::run(ctx, &ctx.analysis(), ctx.plateau());
}

fn run_fig6(ctx: &Ctx) {
    let optima = fig06::run(ctx, &ctx.analysis(), ctx.plateau());
    if !optima.is_empty() {
        // The paper sets the Fig. 7 budget just below its Fig. 6 optimum;
        // mirror that on our calibration.
        ctx.set_energy_budget(optima.iter().map(|o| o.2).sum::<f64>() / optima.len() as f64);
    }
}

fn run_fig7(ctx: &Ctx) {
    fig07::run(ctx, &ctx.analysis(), ctx.energy_budget().round());
}

fn run_fig8(ctx: &Ctx) {
    let optima = fig08::run(ctx, &ctx.sim());
    if !optima.is_empty() {
        ctx.set_sim_plateau(optima.iter().map(|o| o.2).fold(f64::MAX, f64::min) * 0.999);
    }
}

fn run_fig9(ctx: &Ctx) {
    fig09::run(ctx, &ctx.sim(), ctx.sim_plateau());
}

fn run_fig10(ctx: &Ctx) {
    let optima = fig10::run(ctx, &ctx.sim(), ctx.sim_plateau());
    if !optima.is_empty() {
        ctx.set_sim_budget(optima.iter().map(|o| o.2).sum::<f64>() / optima.len() as f64);
    }
}

fn run_fig11(ctx: &Ctx) {
    fig11::run(ctx, &ctx.sim(), ctx.sim_budget().round());
}

/// All figures, in dispatch order.
pub static REGISTRY: &[FigureDef] = &[
    fig!(
        "fig4",
        "analysis",
        "analytical reachability vs p, optimal p vs rho",
        "repro.fig4",
        run_fig4
    ),
    fig!(
        "fig5",
        "analysis",
        "analytical latency to the plateau target",
        "repro.fig5",
        run_fig5
    ),
    fig!(
        "fig6",
        "analysis",
        "analytical energy to the plateau target",
        "repro.fig6",
        run_fig6
    ),
    fig!(
        "fig7",
        "analysis",
        "analytical reachability under an energy budget",
        "repro.fig7",
        run_fig7
    ),
    fig!(
        "fig8",
        "sim",
        "simulated reachability vs p, optimal p vs rho",
        "repro.fig8",
        run_fig8
    ),
    fig!(
        "fig9",
        "sim",
        "simulated latency to the plateau target",
        "repro.fig9",
        run_fig9
    ),
    fig!(
        "fig10",
        "sim",
        "simulated broadcasts to the plateau target",
        "repro.fig10",
        run_fig10
    ),
    fig!(
        "fig11",
        "sim",
        "simulated reachability under a broadcast budget",
        "repro.fig11",
        run_fig11
    ),
    fig!(
        "fig12",
        "misc",
        "per-broadcast success-rate correlation",
        "repro.fig12",
        fig12::run
    ),
    fig!(
        "ext-cs",
        "ext",
        "carrier-sense (2r) vs transmission-range optima",
        "repro.ext-cs",
        extensions::ext_carrier_sense
    ),
    fig!(
        "ext-cfmgap",
        "ext",
        "CFM prediction vs CAM measurement gap",
        "repro.ext-cfmgap",
        extensions::ext_cfm_gap
    ),
    fig!(
        "ext-grid",
        "ext",
        "grid-deployment percolation threshold",
        "repro.ext-grid",
        extensions::ext_grid_percolation
    ),
    fig!(
        "ext-adaptive",
        "ext",
        "adaptive density-aware probability control",
        "repro.ext-adaptive",
        extensions::ext_adaptive
    ),
    fig!(
        "ext-ack",
        "ext",
        "ACK-based reliable flooding cost",
        "repro.ext-ack",
        extensions::ext_ack_flood
    ),
    fig!(
        "ext-async",
        "ext",
        "synchronous vs asynchronous execution",
        "repro.ext-async",
        extensions::ext_async
    ),
    fig!(
        "ext-mumode",
        "ext",
        "mu interpolation vs Poisson closure",
        "repro.ext-mumode",
        extensions::ext_mu_mode
    ),
    fig!(
        "ext-survival",
        "ext",
        "per-node survival-time distribution",
        "repro.ext-survival",
        extensions::ext_survival
    ),
    fig!(
        "ext-cfmcost",
        "ext",
        "CFM cost accounting",
        "repro.ext-cfmcost",
        extensions::ext_cfm_cost
    ),
    fig!(
        "ext-schemes",
        "ext",
        "broadcast-scheme comparison",
        "repro.ext-schemes",
        extensions::ext_schemes
    ),
    fig!(
        "ext-converge",
        "ext",
        "convergecast under CAM",
        "repro.ext-converge",
        extensions::ext_convergecast
    ),
    fig!(
        "ext-failures",
        "ext",
        "PB_CAM under per-phase node failures",
        "repro.ext-failures",
        extensions::ext_failures
    ),
    fig!(
        "ext-tdma",
        "ext",
        "TDMA-implemented CFM vs CAM flooding",
        "repro.ext-tdma",
        extensions::ext_tdma
    ),
    fig!(
        "ext-slots",
        "ext",
        "slot-count sensitivity",
        "repro.ext-slots",
        extensions::ext_slots
    ),
    fig!(
        "ext-hetero",
        "ext",
        "heterogeneous-radio deployments",
        "repro.ext-hetero",
        extensions::ext_hetero
    ),
    fig!(
        "ext-fieldsize",
        "ext",
        "field-size (ring count) sensitivity",
        "repro.ext-fieldsize",
        extensions::ext_fieldsize
    ),
    fig!(
        "ext-faults",
        "ext",
        "deterministic fault injection: loss + dead-node sweeps, analysis vs sim",
        "repro.ext-faults",
        ext_faults::run
    ),
    fig!(
        "ext-connectivity",
        "ext",
        "Monte-Carlo connectivity probability at f * r_crit(n)",
        "repro.ext-connectivity",
        ext_connectivity::run
    ),
    fig!(
        "ext-sinr",
        "ext",
        "SINR vs unit-disk backends: reachability overlay, transmit-only uplink",
        "repro.ext-sinr",
        ext_sinr::run
    ),
    fig!(
        "report",
        "misc",
        "compose results/REPORT.md from the CSVs",
        "repro.report",
        report::run
    ),
];

/// Looks a figure up by CLI name.
pub fn find(name: &str) -> Option<&'static FigureDef> {
    REGISTRY.iter().find(|f| f.name == name)
}

/// Whether `name` is a selection group with at least one member.
pub fn is_group(name: &str) -> bool {
    REGISTRY.iter().any(|f| f.group == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique() {
        for (i, a) in REGISTRY.iter().enumerate() {
            for b in &REGISTRY[i + 1..] {
                assert_ne!(a.name(), b.name());
            }
        }
    }

    #[test]
    fn calibrating_figures_precede_consumers() {
        let pos = |n: &str| {
            REGISTRY
                .iter()
                .position(|f| f.name() == n)
                .expect("registered")
        };
        assert!(pos("fig4") < pos("fig5"));
        assert!(pos("fig6") < pos("fig7"));
        assert!(pos("fig8") < pos("fig9"));
        assert!(pos("fig10") < pos("fig11"));
        assert_eq!(pos("report"), REGISTRY.len() - 1, "report composes last");
    }

    #[test]
    fn lookup_and_groups() {
        assert!(find("fig4").is_some());
        assert!(find("ext-faults").is_some());
        assert!(find("fig99").is_none());
        assert!(is_group("analysis") && is_group("sim") && is_group("ext"));
        assert!(!is_group("fig4"), "a figure name is not a group");
    }
}
