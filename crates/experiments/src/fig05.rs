//! Fig. 5 — analytical latency of PB_CAM to a fixed reachability target.
//!
//! The paper uses 72% — the plateau its Fig. 4(b) discovered. We use the
//! plateau *our* calibration discovers (passed in from Fig. 4) so the
//! §4.1 duality (Fig. 5b ≡ Fig. 4b) is exhibited on our numbers, and
//! report the target alongside.

use crate::common::{fmt_opt, heading, Ctx};
use nss_analysis::optimize::Objective;
use nss_analysis::sweep::DensitySweep;

/// Runs the Fig. 5 reproduction. `target` is the reachability constraint
/// (the Fig. 4 plateau, paper: 0.72). Returns per-density optima.
pub fn run(ctx: &Ctx, sweep: &DensitySweep, target: f64) -> Vec<(f64, f64, f64)> {
    heading(&format!(
        "Fig 5(a): analytical latency (phases) to {:.0}% reachability",
        target * 100.0
    ));
    let obj = Objective::MinLatencyForReach { target };
    let values = sweep.evaluate(obj);

    nss_obs::status_inline!("{:>6}", "p");
    for &rho in &sweep.rhos {
        nss_obs::status_inline!(" {:>8}", format!("rho={rho:.0}"));
    }
    nss_obs::status!();
    let mut csv = Vec::new();
    for (pi, &p) in sweep.probs.iter().enumerate() {
        nss_obs::status_inline!("{p:>6.2}");
        let mut row = format!("{p}");
        for ri in 0..sweep.rhos.len() {
            let v = values[ri][pi];
            nss_obs::status_inline!(" {}", fmt_opt(v, 8, 2));
            row.push_str(&format!(
                ",{}",
                v.map_or(String::new(), |x| format!("{x:.4}"))
            ));
        }
        nss_obs::status!();
        csv.push(row);
    }
    let header = format!(
        "p,{}",
        sweep
            .rhos
            .iter()
            .map(|r| format!("latency_rho{r:.0}"))
            .collect::<Vec<_>>()
            .join(",")
    );
    ctx.write_csv("fig05a_latency.csv", &header, &csv);

    heading("Fig 5(b): optimal probability and corresponding latency");
    nss_obs::status!("{:>6} {:>8} {:>10}", "rho", "p*", "latency*");
    let mut out = Vec::new();
    let mut csv = Vec::new();
    for (rho, opt) in sweep.optima(obj) {
        match opt {
            Some(opt) => {
                nss_obs::status!("{rho:>6.0} {:>8.2} {:>10.2}", opt.prob, opt.value);
                csv.push(format!("{rho},{},{}", opt.prob, opt.value));
                out.push((rho, opt.prob, opt.value));
            }
            None => {
                nss_obs::status!("{rho:>6.0} {:>8} {:>10}", "-", "-");
                csv.push(format!("{rho},,"));
            }
        }
    }
    ctx.write_csv("fig05b_optimal.csv", "rho,p_opt,latency_opt", &csv);
    ctx.write_svg(
        "fig05a.svg",
        &crate::common::panel_a_chart(
            &format!(
                "Fig 5(a): analytical latency to {:.0}% reachability",
                target * 100.0
            ),
            "latency (phases)",
            &sweep.probs,
            &sweep.rhos,
            &values,
        ),
    );
    ctx.write_svg(
        "fig05b.svg",
        &crate::common::panel_b_chart("Fig 5(b): optimal probability", "latency at p*", &out),
    );
    out
}
