//! Ext R — deterministic fault injection: the analytical lossy-ring model
//! versus the simulator under a [`FaultPlan`].
//!
//! Part A sweeps an independent per-link loss probability λ at the paper's
//! mid density (ρ = 60, p = 0.4): the analysis scales its success kernel by
//! the delivery probability `q = 1 − λ`, the simulator draws per-link coins
//! from the dedicated `faults` RNG stream. Part B thins the deployment to
//! an alive fraction `a` and asks how the *optimal* broadcast probability
//! shifts: dead relays remove redundancy, so p* climbs as `a` drops.

use crate::common::{heading, Ctx};
use nss_analysis::ring_model::{RingModel, RingModelConfig};
use nss_model::deployment::Deployment;
use nss_model::faults::FaultPlan;
use nss_sim::runner::Replication;
use nss_sim::slotted::GossipConfig;

/// Latency budget (phases) shared by both parts.
const LATENCY: f64 = 10.0;

/// Density / base probability of the Part A loss sweep.
const RHO: f64 = 60.0;
const PROB: f64 = 0.4;

pub fn run(ctx: &Ctx) {
    heading("Ext R: fault injection — link loss and dead-node sweeps");
    part_a_link_loss(ctx);
    part_b_alive_fraction(ctx);
}

/// Part A: reachability degradation under per-link loss.
fn part_a_link_loss(ctx: &Ctx) {
    nss_obs::status!(
        "{:>6} {:>12} {:>12} {:>10}",
        "loss",
        "anal_reach",
        "sim_reach",
        "sim_ci95"
    );
    let lambdas = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5];
    let mut csv = Vec::new();
    let mut anal_pts = Vec::new();
    let mut sim_pts = Vec::new();
    for (li, &lambda) in lambdas.iter().enumerate() {
        let mut cfg = RingModelConfig::paper(RHO, PROB);
        cfg.quad_points = ctx.quad_points();
        cfg.link_q = 1.0 - lambda;
        let anal = RingModel::cached(cfg)
            .run()
            .phase_series()
            .reachability_at_latency(LATENCY);

        let plan = FaultPlan::lossy(lambda);
        let rep = Replication::paper(
            Deployment::disk(5, 1.0, RHO),
            GossipConfig::pb_cam(PROB),
            ctx.seed.wrapping_add(0xFA01).wrapping_add(li as u64),
        )
        .with_runs(ctx.sim_runs())
        .with_threads(ctx.threads)
        .with_faults(plan);
        let sim = rep.run().reachability_at_latency(LATENCY);

        nss_obs::status!(
            "{lambda:>6.2} {anal:>12.3} {:>12.3} {:>10.3}",
            sim.mean,
            sim.ci95
        );
        csv.push(format!("{lambda},{anal},{},{}", sim.mean, sim.ci95));
        anal_pts.push((lambda, anal));
        sim_pts.push((lambda, sim.mean));
    }
    ctx.write_csv(
        "ext_faults_loss.csv",
        "loss,analysis_reach,sim_reach,sim_ci95",
        &csv,
    );
    let chart = nss_plot::Chart::new(
        "Reachability vs link loss (rho=60, p=0.4)",
        "link loss probability",
        "reachability within 10 phases",
    )
    .with_series(nss_plot::Series::new("analysis (q = 1 - loss)", anal_pts))
    .with_series(nss_plot::Series::new("simulation (FaultPlan)", sim_pts));
    ctx.write_svg("ext_faults_loss.svg", &chart);
    nss_obs::status!("\nexpected shape: monotone degradation; analysis tracks the sim curve");
}

/// Part B: how the optimal probability shifts as nodes die.
fn part_b_alive_fraction(ctx: &Ctx) {
    nss_obs::status!(
        "\n{:>8} {:>10} {:>12} {:>10} {:>12}",
        "alive",
        "p*_anal",
        "reach_anal",
        "p*_sim",
        "reach_sim"
    );
    let alive_fracs: &[f64] = if ctx.fast {
        &[1.0, 0.6]
    } else {
        &[1.0, 0.9, 0.75, 0.6]
    };
    // A coarse grid keeps the simulated argmax affordable; the analysis
    // reuses one interned kernel across every (a, p) cell.
    let probs: Vec<f64> = (1..=10).map(|i| f64::from(i) / 10.0).collect();
    let mut csv = Vec::new();
    let mut anal_opt = Vec::new();
    let mut sim_opt = Vec::new();
    for (ai, &alive) in alive_fracs.iter().enumerate() {
        let (mut pa, mut ra) = (probs[0], f64::MIN);
        for &p in &probs {
            let mut cfg = RingModelConfig::paper(RHO, p);
            cfg.quad_points = ctx.quad_points();
            cfg.alive_frac = alive;
            let reach = RingModel::cached(cfg)
                .run()
                .phase_series()
                .reachability_at_latency(LATENCY);
            if reach > ra {
                (pa, ra) = (p, reach);
            }
        }

        let plan = FaultPlan::thinned(1.0 - alive);
        let (mut ps, mut rs) = (probs[0], f64::MIN);
        for (pi, &p) in probs.iter().enumerate() {
            let rep = Replication::paper(
                Deployment::disk(5, 1.0, RHO),
                GossipConfig::pb_cam(p),
                ctx.seed
                    .wrapping_add(0xFB00)
                    .wrapping_add((ai as u64) << 16)
                    .wrapping_add(pi as u64),
            )
            .with_runs(ctx.sim_runs())
            .with_threads(ctx.threads)
            .with_faults(plan.clone());
            let reach = rep.run().reachability_at_latency(LATENCY).mean;
            if reach > rs {
                (ps, rs) = (p, reach);
            }
        }

        nss_obs::status!("{alive:>8.2} {pa:>10.2} {ra:>12.3} {ps:>10.2} {rs:>12.3}");
        csv.push(format!("{alive},{pa},{ra},{ps},{rs}"));
        anal_opt.push((alive, pa));
        sim_opt.push((alive, ps));
    }
    ctx.write_csv(
        "ext_faults_alive.csv",
        "alive_frac,analysis_p_opt,analysis_reach,sim_p_opt,sim_reach",
        &csv,
    );
    let chart = nss_plot::Chart::new(
        "Optimal broadcast probability vs alive fraction (rho=60)",
        "alive fraction",
        "optimal p",
    )
    .with_series(nss_plot::Series::new("analysis (alive_frac)", anal_opt))
    .with_series(nss_plot::Series::new("simulation (thinned plan)", sim_opt));
    ctx.write_svg("ext_faults_alive.svg", &chart);
    nss_obs::status!("\nexpected shape: fewer live relays push the optimal probability upward");
}
