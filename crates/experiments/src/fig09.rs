//! Fig. 9 — simulated latency of PB_CAM to the simulated plateau
//! reachability (paper: 63%; ours computed from Fig. 8).
//!
//! Paper findings: the latency-optimal probability matches Fig. 8(b) and
//! the achieved latency is ≈ 5 phases (the duality again, measured).

use crate::common::{fmt_opt, heading, Ctx, SimSweep};

/// Runs the Fig. 9 reproduction at the given reachability target. Returns
/// per-density optima `(ρ, p*, latency*)`.
pub fn run(ctx: &Ctx, sweep: &SimSweep, target: f64) -> Vec<(f64, f64, f64)> {
    heading(&format!(
        "Fig 9(a): simulated latency (phases) to {:.0}% reachability",
        target * 100.0
    ));
    nss_obs::status_inline!("{:>6}", "p");
    for &rho in &sweep.rhos {
        nss_obs::status_inline!(" {:>8}", format!("rho={rho:.0}"));
    }
    nss_obs::status!();
    let mut csv = Vec::new();
    // mean latency over feasible runs; None when < half the runs achieve it
    let mut means: Vec<Vec<Option<f64>>> = vec![vec![None; sweep.probs.len()]; sweep.rhos.len()];
    for (pi, &p) in sweep.probs.iter().enumerate() {
        nss_obs::status_inline!("{p:>6.2}");
        let mut row = format!("{p}");
        for ri in 0..sweep.rhos.len() {
            let (s, frac) = sweep.grid[ri][pi].latency_to_reach(target);
            let v = if frac >= 0.5 { Some(s.mean) } else { None };
            means[ri][pi] = v;
            nss_obs::status_inline!(" {}", fmt_opt(v, 8, 2));
            row.push_str(&format!(
                ",{},{:.3}",
                v.map_or(String::new(), |x| format!("{x:.4}")),
                frac
            ));
        }
        nss_obs::status!();
        csv.push(row);
    }
    let header = format!(
        "p,{}",
        sweep
            .rhos
            .iter()
            .map(|r| format!("latency_rho{r:.0},feasible_rho{r:.0}"))
            .collect::<Vec<_>>()
            .join(",")
    );
    ctx.write_csv("fig09a_sim_latency.csv", &header, &csv);

    heading("Fig 9(b): simulated optimal probability and latency");
    nss_obs::status!("{:>6} {:>8} {:>10}", "rho", "p*", "latency*");
    let mut out = Vec::new();
    let mut csv = Vec::new();
    for (ri, &rho) in sweep.rhos.iter().enumerate() {
        let best = means[ri]
            .iter()
            .enumerate()
            .filter_map(|(pi, v)| v.map(|x| (pi, x)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("no NaN"));
        match best {
            Some((pi, lat)) => {
                let p = sweep.probs[pi];
                nss_obs::status!("{rho:>6.0} {p:>8.2} {lat:>10.2}");
                csv.push(format!("{rho},{p},{lat}"));
                out.push((rho, p, lat));
            }
            None => {
                nss_obs::status!("{rho:>6.0} {:>8} {:>10}", "-", "-");
                csv.push(format!("{rho},,"));
            }
        }
    }
    ctx.write_csv("fig09b_sim_optimal.csv", "rho,p_opt,latency_opt", &csv);
    ctx.write_svg(
        "fig09a.svg",
        &crate::common::panel_a_chart(
            &format!(
                "Fig 9(a): simulated latency to {:.0}% reachability",
                target * 100.0
            ),
            "latency (phases)",
            &sweep.probs,
            &sweep.rhos,
            &means,
        ),
    );
    ctx.write_svg(
        "fig09b.svg",
        &crate::common::panel_b_chart(
            "Fig 9(b): simulated optimal probability",
            "latency at p*",
            &out,
        ),
    );
    out
}
