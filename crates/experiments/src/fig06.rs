//! Fig. 6 — analytical energy cost (broadcast count) of PB_CAM to a fixed
//! reachability target.
//!
//! Paper findings: M grows with both ρ and p; the energy-optimal
//! probability stays within [0, ~0.1] across all densities, with M* ≤ ~40
//! — two orders of magnitude below flooding at high density.

use crate::common::{fmt_opt, heading, Ctx};
use nss_analysis::optimize::Objective;
use nss_analysis::sweep::DensitySweep;

/// Runs the Fig. 6 reproduction at the given reachability target (the
/// Fig. 4 plateau). Returns per-density optima `(ρ, p*, M*)`.
pub fn run(ctx: &Ctx, sweep: &DensitySweep, target: f64) -> Vec<(f64, f64, f64)> {
    heading(&format!(
        "Fig 6(a): analytical broadcast count to {:.0}% reachability",
        target * 100.0
    ));
    let obj = Objective::MinBroadcastsForReach { target };
    let values = sweep.evaluate(obj);

    print!("{:>6}", "p");
    for &rho in &sweep.rhos {
        print!(" {:>9}", format!("rho={rho:.0}"));
    }
    println!();
    let mut csv = Vec::new();
    for (pi, &p) in sweep.probs.iter().enumerate() {
        print!("{p:>6.2}");
        let mut row = format!("{p}");
        for ri in 0..sweep.rhos.len() {
            let v = values[ri][pi];
            print!(" {}", fmt_opt(v, 9, 1));
            row.push_str(&format!(
                ",{}",
                v.map_or(String::new(), |x| format!("{x:.3}"))
            ));
        }
        println!();
        csv.push(row);
    }
    let header = format!(
        "p,{}",
        sweep
            .rhos
            .iter()
            .map(|r| format!("broadcasts_rho{r:.0}"))
            .collect::<Vec<_>>()
            .join(",")
    );
    ctx.write_csv("fig06a_broadcasts.csv", &header, &csv);

    heading("Fig 6(b): energy-optimal probability and broadcast count");
    println!("{:>6} {:>8} {:>10}", "rho", "p*", "M*");
    let mut out = Vec::new();
    let mut csv = Vec::new();
    for (rho, opt) in sweep.optima(obj) {
        match opt {
            Some(opt) => {
                println!("{rho:>6.0} {:>8.2} {:>10.1}", opt.prob, opt.value);
                csv.push(format!("{rho},{},{}", opt.prob, opt.value));
                out.push((rho, opt.prob, opt.value));
            }
            None => {
                println!("{rho:>6.0} {:>8} {:>10}", "-", "-");
                csv.push(format!("{rho},,"));
            }
        }
    }
    ctx.write_csv("fig06b_optimal.csv", "rho,p_opt,broadcasts_opt", &csv);
    ctx.write_svg(
        "fig06a.svg",
        &crate::common::panel_a_chart(
            &format!(
                "Fig 6(a): analytical broadcasts to {:.0}% reachability",
                target * 100.0
            ),
            "broadcast count M",
            &sweep.probs,
            &sweep.rhos,
            &values,
        ),
    );
    ctx.write_svg(
        "fig06b.svg",
        &crate::common::panel_b_chart("Fig 6(b): energy-optimal probability", "M at p*", &out),
    );

    if let (Some(first), Some(last)) = (out.first(), out.last()) {
        println!(
            "\nshape: energy-optimal p stays small ({:.2} -> {:.2}); M* max {:.0}",
            first.1,
            last.1,
            out.iter().map(|o| o.2).fold(f64::MIN, f64::max)
        );
    }
    out
}
