//! Fig. 6 — analytical energy cost (broadcast count) of PB_CAM to a fixed
//! reachability target.
//!
//! Paper findings: M grows with both ρ and p; the energy-optimal
//! probability stays within [0, ~0.1] across all densities, with M* ≤ ~40
//! — two orders of magnitude below flooding at high density.

use crate::common::{fmt_opt, heading, Ctx};
use nss_analysis::optimize::Objective;
use nss_analysis::sweep::DensitySweep;

/// Runs the Fig. 6 reproduction at the given reachability target (the
/// Fig. 4 plateau). Returns per-density optima `(ρ, p*, M*)`.
pub fn run(ctx: &Ctx, sweep: &DensitySweep, target: f64) -> Vec<(f64, f64, f64)> {
    heading(&format!(
        "Fig 6(a): analytical broadcast count to {:.0}% reachability",
        target * 100.0
    ));
    let obj = Objective::MinBroadcastsForReach { target };
    let values = sweep.evaluate(obj);

    nss_obs::status_inline!("{:>6}", "p");
    for &rho in &sweep.rhos {
        nss_obs::status_inline!(" {:>9}", format!("rho={rho:.0}"));
    }
    nss_obs::status!();
    let mut csv = Vec::new();
    for (pi, &p) in sweep.probs.iter().enumerate() {
        nss_obs::status_inline!("{p:>6.2}");
        let mut row = format!("{p}");
        for ri in 0..sweep.rhos.len() {
            let v = values[ri][pi];
            nss_obs::status_inline!(" {}", fmt_opt(v, 9, 1));
            row.push_str(&format!(
                ",{}",
                v.map_or(String::new(), |x| format!("{x:.3}"))
            ));
        }
        nss_obs::status!();
        csv.push(row);
    }
    let header = format!(
        "p,{}",
        sweep
            .rhos
            .iter()
            .map(|r| format!("broadcasts_rho{r:.0}"))
            .collect::<Vec<_>>()
            .join(",")
    );
    ctx.write_csv("fig06a_broadcasts.csv", &header, &csv);

    heading("Fig 6(b): energy-optimal probability and broadcast count");
    nss_obs::status!("{:>6} {:>8} {:>10}", "rho", "p*", "M*");
    let mut out = Vec::new();
    let mut csv = Vec::new();
    for (rho, opt) in sweep.optima(obj) {
        match opt {
            Some(opt) => {
                nss_obs::status!("{rho:>6.0} {:>8.2} {:>10.1}", opt.prob, opt.value);
                csv.push(format!("{rho},{},{}", opt.prob, opt.value));
                out.push((rho, opt.prob, opt.value));
            }
            None => {
                nss_obs::status!("{rho:>6.0} {:>8} {:>10}", "-", "-");
                csv.push(format!("{rho},,"));
            }
        }
    }
    ctx.write_csv("fig06b_optimal.csv", "rho,p_opt,broadcasts_opt", &csv);
    ctx.write_svg(
        "fig06a.svg",
        &crate::common::panel_a_chart(
            &format!(
                "Fig 6(a): analytical broadcasts to {:.0}% reachability",
                target * 100.0
            ),
            "broadcast count M",
            &sweep.probs,
            &sweep.rhos,
            &values,
        ),
    );
    ctx.write_svg(
        "fig06b.svg",
        &crate::common::panel_b_chart("Fig 6(b): energy-optimal probability", "M at p*", &out),
    );

    if let (Some(first), Some(last)) = (out.first(), out.last()) {
        nss_obs::status!(
            "\nshape: energy-optimal p stays small ({:.2} -> {:.2}); M* max {:.0}",
            first.1,
            last.1,
            out.iter().map(|o| o.2).fold(f64::MIN, f64::max)
        );
    }
    out
}
