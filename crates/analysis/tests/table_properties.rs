//! Property tests for the table-driven kernel cache: the precomputed
//! geometry tables must agree with direct lens-area evaluation, and a
//! cached model run must be indistinguishable from an uncached one.

use nss_analysis::prelude::*;
use nss_analysis::tables::GeometryTables;
use nss_model::comm::CollisionRule;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A(x_q, j, k) and B(x_q, j, k) read from the tables match direct
    /// geometry evaluation at every Simpson abscissa (to 1e-12; they are in
    /// fact stored verbatim).
    #[test]
    fn tables_match_direct_geometry(
        p in 1u32..8,
        r in 0.2f64..3.0,
        quad in 2usize..80,
        cs_factor in 1.1f64..3.0,
    ) {
        let geom = RingGeometry::new(p, r);
        let tables = GeometryTables::build(p, r, quad, Some(cs_factor));
        for j in 1..=p {
            for k in 1..=p {
                for (i, &x) in tables.abscissae().iter().enumerate() {
                    let a_direct = geom.a_area(j, x, k);
                    let b_direct = geom.b_area(j, x, k, cs_factor);
                    prop_assert!(
                        (tables.a(j, k, i) - a_direct).abs() <= 1e-12,
                        "A({j},{x},{k}): table {} vs direct {a_direct}",
                        tables.a(j, k, i)
                    );
                    prop_assert!(
                        (tables.b(j, k, i) - b_direct).abs() <= 1e-12,
                        "B({j},{x},{k}): table {} vs direct {b_direct}",
                        tables.b(j, k, i)
                    );
                }
            }
        }
    }

    /// The quadrature weights baked into `integrate` reproduce plain
    /// Simpson integration of an arbitrary smooth function bitwise.
    #[test]
    fn integrate_matches_simpson(
        r in 0.2f64..3.0,
        quad in 2usize..80,
        a in -2.0f64..2.0,
        b in 0.1f64..4.0,
    ) {
        let tables = GeometryTables::build(3, r, quad, None);
        let f = |x: f64| (a + x) * (b * x).cos() + x * x;
        let direct = nss_analysis::quadrature::simpson(f, 0.0, r, quad);
        let tabled = tables.integrate(|_, x| f(x));
        prop_assert_eq!(direct.to_bits(), tabled.to_bits());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Running through the kernel cache is observationally identical to a
    /// fresh uncached model, across densities, probabilities, and both
    /// collision rules.
    #[test]
    fn cached_run_identical_to_uncached(
        rho in 5.0f64..150.0,
        prob in 0.01f64..1.0,
        quad in 8usize..48,
        carrier in 0u32..2,
    ) {
        let mut cfg = RingModelConfig::paper(rho, prob);
        cfg.quad_points = quad;
        if carrier == 1 {
            cfg.collision = CollisionRule::CARRIER_SENSE_2R;
        }
        let fresh = RingModel::new(cfg).run().phase_series();
        let cached = RingModel::cached(cfg).run().phase_series();
        prop_assert_eq!(fresh.informed_cum.len(), cached.informed_cum.len());
        for (x, y) in fresh.informed_cum.iter().zip(&cached.informed_cum) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
        for (x, y) in fresh.broadcasts_cum.iter().zip(&cached.broadcasts_cum) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    /// Success-rate tracking is also preserved by the cached path.
    #[test]
    fn cached_success_tracking_identical(
        rho in 5.0f64..150.0,
        prob in 0.05f64..1.0,
    ) {
        let mut cfg = RingModelConfig::paper(rho, prob);
        cfg.quad_points = 24;
        let fresh = RingModel::new(cfg).with_success_rate_tracking().run();
        let cached = RingModel::cached(cfg).with_success_rate_tracking().run();
        prop_assert_eq!(
            fresh.success_rate_by_phase.len(),
            cached.success_rate_by_phase.len()
        );
        for (&(r1, w1), &(r2, w2)) in fresh
            .success_rate_by_phase
            .iter()
            .zip(&cached.success_rate_by_phase)
        {
            prop_assert_eq!(r1.to_bits(), r2.to_bits());
            prop_assert_eq!(w1.to_bits(), w2.to_bits());
        }
    }
}
