//! Exhaustive-interleaving model of the sweep collector's work-claiming
//! protocol (`DensitySweep::run` in `src/sweep.rs`, and the identical idiom
//! in `nss-sim`'s replication runner).
//!
//! The production code parallelizes a (ρ × p) grid like this:
//!
//! ```text
//! cursor = AtomicUsize(0)
//! worker: loop {
//!     i = cursor.fetch_add(1, Relaxed);
//!     if i >= cells.len() { break }
//!     compute cell i; send (i, result) to the collector
//! }
//! collector: results[i] = Some(series) for each received pair
//! ```
//!
//! Determinism of the whole sweep — the property the `repro` CLI's
//! byte-identical CSVs rest on — reduces to a claim about this protocol:
//! **every index in `0..cells.len()` is claimed by exactly one worker, and
//! each result slot is written exactly once**, for every interleaving and
//! any worker count. The tests below check that exhaustively (at model
//! sizes) with the vendored `loom` shim; the channel itself is `crossbeam`
//! and is trusted, so the model covers the cursor and the write-once slots.
//!
//! `detects_broken_protocol` is the control experiment: replacing the
//! atomic `fetch_add` with a load-then-store — the bug the protocol is one
//! `Ordering` typo away from — must be caught by some schedule, proving
//! the checker actually explores the racy interleavings.

use loom::sync::atomic::{AtomicUsize, Ordering};
use loom::sync::Arc;

/// Worker loop as in `sweep.rs`, with the per-cell computation and channel
/// send abstracted into a fetch_add on the cell's claim counter (the send
/// happens exactly once per claim, so claims model sends).
fn run_workers(workers: usize, cells: usize) -> Arc<Vec<AtomicUsize>> {
    let cursor = Arc::new(AtomicUsize::new(0));
    let claims: Arc<Vec<AtomicUsize>> = Arc::new((0..cells).map(|_| AtomicUsize::new(0)).collect());
    let handles: Vec<_> = (0..workers)
        .map(|_| {
            let cursor = Arc::clone(&cursor);
            let claims = Arc::clone(&claims);
            loom::thread::spawn(move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= cells {
                    break;
                }
                let prev = claims[i].fetch_add(1, Ordering::SeqCst);
                assert_eq!(prev, 0, "cell {i} claimed twice");
            })
        })
        .collect();
    for h in handles {
        h.join().expect("worker panicked");
    }
    claims
}

/// Every cell is claimed exactly once under every schedule of two workers
/// over three cells (the smallest size where claims can straddle the
/// cursor's wrap-up reads).
#[test]
fn every_cell_claimed_exactly_once() {
    loom::model(|| {
        let claims = run_workers(2, 3);
        for (i, c) in claims.iter().enumerate() {
            assert_eq!(
                c.load(Ordering::SeqCst),
                1,
                "cell {i} not claimed exactly once"
            );
        }
    });
}

/// Same protocol, three workers over two cells: more workers than work, so
/// every worker's exit path (an over-claimed index ≥ n) is exercised in
/// every interleaving.
#[test]
fn overprovisioned_workers_still_partition_the_grid() {
    loom::model(|| {
        let claims = run_workers(3, 2);
        for (i, c) in claims.iter().enumerate() {
            assert_eq!(
                c.load(Ordering::SeqCst),
                1,
                "cell {i} not claimed exactly once"
            );
        }
    });
}

/// Control: break the protocol (load-then-store instead of `fetch_add`)
/// and the checker must find a double claim. Guards against the shim
/// silently under-exploring — if this test ever passes without panicking,
/// the two tests above prove nothing.
#[test]
#[should_panic(expected = "claimed twice")]
fn detects_broken_protocol() {
    loom::model(|| {
        const CELLS: usize = 2;
        let cursor = Arc::new(AtomicUsize::new(0));
        let claims: Arc<Vec<AtomicUsize>> =
            Arc::new((0..CELLS).map(|_| AtomicUsize::new(0)).collect());
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let cursor = Arc::clone(&cursor);
                let claims = Arc::clone(&claims);
                loom::thread::spawn(move || loop {
                    // BUG under test: non-atomic read-modify-write.
                    let i = cursor.load(Ordering::Relaxed);
                    cursor.store(i + 1, Ordering::Relaxed);
                    if i >= CELLS {
                        break;
                    }
                    let prev = claims[i].fetch_add(1, Ordering::SeqCst);
                    assert_eq!(prev, 0, "cell {i} claimed twice");
                })
            })
            .collect();
        for h in handles {
            if let Err(payload) = h.join() {
                // Re-panic with the worker's original message so
                // `should_panic(expected = …)` can match it.
                std::panic::resume_unwind(payload);
            }
        }
    });
}
