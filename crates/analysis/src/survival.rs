//! Branching-process extinction correction for small broadcast
//! probabilities.
//!
//! The ring recursion (Eq. 4) is a *mean-field* model: it propagates
//! expectations, so its cascades never die. Real PB_CAM executions at
//! small `p` frequently go extinct in the first few phases (every informed
//! node declines to rebroadcast, or all rebroadcasts collide), which is why
//! the paper's analytical energy optima (Fig. 6b: `p* < 0.1`, `M* ≈ 40`)
//! sit below its own simulated ones (Fig. 10b: `p* ≈ 0.1–0.2`, `M* ≈ 80`).
//!
//! This module grafts a Galton–Watson survival estimate onto the ring
//! model:
//!
//! 1. The early cascade is viewed in *transmitter generations*: phase-`i`
//!    transmitters beget phase-`i+1` transmitters with mean offspring
//!    `m_i = B_{i+1} / B_i` (read directly off the mean-field profile's
//!    broadcast series).
//! 2. With Poisson-approximated offspring, a single lineage's extinction
//!    probability solves `q = e^{m (q − 1)}` (the classical fixed point).
//! 3. The cascade starts from `X₀ ~ Binomial(ρ, p)` first-generation
//!    transmitters (ring-1 nodes flipping the coin), so the cascade
//!    survives with probability `1 − (1 − p(1 − q))^ρ`.
//! 4. The adjusted reachability mixes the mean-field prediction (given
//!    survival) with the extinct outcome (only ring `R_1` informed).
//!
//! This is an explicitly approximate refinement — generation-dependent
//! offspring are collapsed to the early-phase mean — but it moves the
//! analytical energy-side predictions toward the simulated truth (see the
//! `ext-survival` experiment).

use crate::ring_model::RingProfile;
use serde::{Deserialize, Serialize};

/// Survival analysis of one analytical execution profile.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SurvivalEstimate {
    /// Early-phase mean offspring per transmitter (`m`).
    pub offspring_mean: f64,
    /// Extinction probability of a single transmitter lineage (`q`).
    pub lineage_extinction: f64,
    /// Probability the whole cascade survives the start-up phase.
    pub cascade_survival: f64,
    /// Mean-field final reachability (the uncorrected prediction).
    pub mean_field_reachability: f64,
    /// Extinction-adjusted expected final reachability.
    pub adjusted_reachability: f64,
}

/// Computes the survival estimate for a ring-model profile.
pub fn survival_estimate(profile: &RingProfile) -> SurvivalEstimate {
    let cfg = &profile.config;
    let series = profile.phase_series();
    let mean_field = series.final_reachability();

    // Offspring mean from the earliest well-defined generation ratio:
    // B_3 / B_2 (phase 1 is the deterministic source broadcast). When the
    // cascade is too short to measure, treat it as subcritical.
    let b = &profile.broadcasts_by_phase;
    let offspring_mean = if b.len() >= 3 && b[1] > 1e-12 {
        b[2] / b[1]
    } else {
        0.0
    };

    let lineage_extinction = poisson_extinction(offspring_mean);
    // X0 ~ Binomial(rho, p): each of the ~rho ring-1 nodes independently
    // becomes a gen-1 transmitter with probability p; the cascade dies iff
    // every started lineage dies.
    let per_node_survival = cfg.prob * (1.0 - lineage_extinction);
    let cascade_survival = 1.0 - (1.0 - per_node_survival).powf(cfg.rho);

    // Extinct outcome: ring R_1 (informed by the collision-free source
    // broadcast) plus the source — rho + 1 of N nodes.
    let extinct_reach = ((cfg.rho + 1.0) / cfg.n_total()).min(1.0);
    let adjusted = cascade_survival * mean_field + (1.0 - cascade_survival) * extinct_reach;

    SurvivalEstimate {
        offspring_mean,
        lineage_extinction,
        cascade_survival,
        mean_field_reachability: mean_field,
        adjusted_reachability: adjusted,
    }
}

/// Extinction probability of a Galton–Watson process with Poisson(`m`)
/// offspring: the smallest root of `q = e^{m(q−1)}`.
///
/// Subcritical or critical (`m ≤ 1`) processes die almost surely.
pub fn poisson_extinction(m: f64) -> f64 {
    if m.is_nan() || m <= 1.0 {
        return 1.0;
    }
    // Fixed-point iteration from 0 converges monotonically to the smallest
    // root for supercritical processes.
    let mut q = 0.0f64;
    for _ in 0..200 {
        let next = (m * (q - 1.0)).exp();
        if (next - q).abs() < 1e-14 {
            return next;
        }
        q = next;
    }
    q
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring_model::{RingModel, RingModelConfig};

    fn estimate(rho: f64, prob: f64) -> SurvivalEstimate {
        let mut cfg = RingModelConfig::paper(rho, prob);
        cfg.quad_points = 32;
        survival_estimate(&RingModel::new(cfg).run())
    }

    #[test]
    fn poisson_extinction_known_values() {
        // Subcritical/critical → certain extinction.
        assert_eq!(poisson_extinction(0.5), 1.0);
        assert_eq!(poisson_extinction(1.0), 1.0);
        assert_eq!(poisson_extinction(0.0), 1.0);
        // m = 2: q = e^{2(q-1)} → q ≈ 0.2032.
        let q = poisson_extinction(2.0);
        assert!(
            (q - (2.0 * (q - 1.0)).exp()).abs() < 1e-12,
            "not a fixed point"
        );
        assert!((q - 0.2032).abs() < 1e-3, "q(2) = {q}");
        // Extinction falls toward 0 as m grows.
        assert!(poisson_extinction(5.0) < 0.01);
        let mut prev = 1.0;
        for m in [1.1, 1.5, 2.0, 3.0, 6.0] {
            let q = poisson_extinction(m);
            assert!(q < prev, "extinction must fall with m");
            prev = q;
        }
    }

    #[test]
    fn survival_low_at_tiny_p_high_at_moderate_p() {
        let tiny = estimate(80.0, 0.02);
        let moderate = estimate(80.0, 0.3);
        assert!(
            tiny.cascade_survival < 0.9,
            "p=0.02 cascades should often die: survival {}",
            tiny.cascade_survival
        );
        assert!(
            moderate.cascade_survival > 0.95,
            "p=0.3 cascades should almost surely survive: {}",
            moderate.cascade_survival
        );
        assert!(tiny.cascade_survival < moderate.cascade_survival);
    }

    #[test]
    fn adjustment_only_reduces_reachability() {
        for &(rho, p) in &[(40.0, 0.02), (40.0, 0.1), (80.0, 0.05), (140.0, 0.02)] {
            let e = estimate(rho, p);
            assert!(
                e.adjusted_reachability <= e.mean_field_reachability + 1e-12,
                "rho={rho}, p={p}: adjusted {} > mean-field {}",
                e.adjusted_reachability,
                e.mean_field_reachability
            );
            assert!((0.0..=1.0).contains(&e.adjusted_reachability));
        }
    }

    #[test]
    fn adjustment_negligible_at_flooding() {
        let e = estimate(60.0, 1.0);
        assert!(
            (e.adjusted_reachability - e.mean_field_reachability).abs() < 0.02,
            "flooding shouldn't be extinction-limited: {} vs {}",
            e.adjusted_reachability,
            e.mean_field_reachability
        );
    }

    #[test]
    fn zero_probability_certain_extinction() {
        let e = estimate(60.0, 0.0);
        assert_eq!(e.cascade_survival, 0.0);
        // Adjusted = extinct outcome = (rho+1)/N.
        let expect = 61.0 / 1500.0;
        assert!((e.adjusted_reachability - expect).abs() < 1e-9);
    }

    // The simulation cross-check (the correction lands closer to the
    // measured mean than the raw mean-field value) lives in the workspace
    // integration tests: `tests/analysis_vs_sim.rs`.
}
