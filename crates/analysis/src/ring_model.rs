//! The phase recursion for PB_CAM (Eq. 4, and Eq. A.3 for carrier sense).
//!
//! The field is viewed as `P` concentric rings; `n_j^i` is the expected
//! number of nodes in ring `R_j` that receive the broadcast during phase
//! `T_i`. Phase 1 informs exactly ring `R_1` (only the source transmits, so
//! no collisions). For `i ≥ 2`, a yet-uninformed node at offset `x` in
//! ring `R_j` hears an expected `g(x)` nodes informed in the previous phase
//! (Eq. 3), of which an expected `g(x)·p` transmit in one of the `s` jitter
//! slots; the node is informed with probability `μ(g(x)·p, s)`. Integrating
//! over the ring (Eq. 4):
//!
//! `n_j^i = ∫₀^{2π}∫₀^r (r(j−1)+x) · μ(g(x)p, s) · (δC_j − Σ_{i'<i} n_j^{i'})/C_j dx dθ`
//!
//! Under the carrier-sense rule the success probability becomes
//! `μ'(g(x)·p, h(x)·p, s)` with `h(x)` the expected informed count in the
//! carrier annulus (Eq. A.2/A.3).

use crate::mu::MuMode;
use crate::tables::{KernelCache, MuCsMemo, MuMemo, SharedKernel};
use nss_model::comm::CollisionRule;
use nss_model::error::ConfigError;
use nss_model::metrics::PhaseSeries;
use serde::{Deserialize, Serialize};
use std::f64::consts::PI;
use std::sync::Arc;

/// Configuration of one analytical PB_CAM evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RingModelConfig {
    /// Number of rings `P` (field radius `P·r`). The paper uses 5.
    pub p: u32,
    /// Jitter slots per phase `s`. The paper uses 3.
    pub s: u32,
    /// Node density as expected neighbors per node, `ρ = δπr²`.
    pub rho: f64,
    /// Transmission radius `r` (scale-free; results depend only on `ρ`, `P`).
    pub r: f64,
    /// Broadcast probability `p` of PB_CAM (1.0 = simple flooding).
    pub prob: f64,
    /// How `μ` is evaluated at real-valued contender counts.
    pub mu_mode: MuMode,
    /// Collision scope (transmission range, or carrier sense per Appendix A).
    pub collision: CollisionRule,
    /// Simpson quadrature points per ring integral.
    pub quad_points: usize,
    /// Hard cap on simulated phases.
    pub max_phases: usize,
    /// Convergence threshold: stop once a phase informs fewer than this
    /// many (expected) nodes.
    pub min_new: f64,
    /// Per-link delivery probability `q` (1.0 = lossless). Mirrors the
    /// simulator's `FaultPlan::link_loss` (`q = 1 − λ`): a clean slot still
    /// delivers only with probability `q`, independently per receiver.
    pub link_q: f64,
    /// Fraction of deployed nodes that are alive (1.0 = all). Mirrors the
    /// simulator's crash thinning (`a = 1 − dead_frac`): ring capacities
    /// shrink to `a·δ·C_j` while reachability stays normalised by the full
    /// `N = ρP²`, so a dead fraction caps attainable reachability at `a`.
    pub alive_frac: f64,
}

impl RingModelConfig {
    /// The paper's evaluation configuration (`P = 5`, `s = 3`) for a given
    /// density `ρ` and broadcast probability `p`.
    pub fn paper(rho: f64, prob: f64) -> Self {
        RingModelConfig {
            p: 5,
            s: 3,
            rho,
            r: 1.0,
            prob,
            mu_mode: MuMode::Interpolate,
            collision: CollisionRule::TransmissionRange,
            quad_points: 64,
            max_phases: 200,
            min_new: 1e-3,
            link_q: 1.0,
            alive_frac: 1.0,
        }
    }

    /// Validates parameter ranges.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.p < 1 {
            return Err(ConfigError::TooSmall {
                field: "P",
                min: 1,
                value: u64::from(self.p),
            });
        }
        if self.s < 1 {
            return Err(ConfigError::TooSmall {
                field: "s",
                min: 1,
                value: u64::from(self.s),
            });
        }
        if !self.rho.is_finite() || self.rho <= 0.0 {
            return Err(ConfigError::NotPositive {
                field: "rho",
                value: self.rho,
            });
        }
        if !self.r.is_finite() || self.r <= 0.0 {
            return Err(ConfigError::NotPositive {
                field: "r",
                value: self.r,
            });
        }
        if !(0.0..=1.0).contains(&self.prob) {
            return Err(ConfigError::OutOfUnitRange {
                field: "broadcast probability",
                value: self.prob,
            });
        }
        if self.quad_points < 2 {
            return Err(ConfigError::TooSmall {
                field: "quad_points",
                min: 2,
                value: self.quad_points as u64,
            });
        }
        if self.max_phases < 1 {
            return Err(ConfigError::TooSmall {
                field: "max_phases",
                min: 1,
                value: self.max_phases as u64,
            });
        }
        if !(0.0..=1.0).contains(&self.link_q) {
            return Err(ConfigError::OutOfUnitRange {
                field: "link_q",
                value: self.link_q,
            });
        }
        if !(0.0..=1.0).contains(&self.alive_frac) {
            return Err(ConfigError::OutOfUnitRange {
                field: "alive_frac",
                value: self.alive_frac,
            });
        }
        Ok(())
    }

    /// Node density `δ = ρ / (πr²)`.
    pub fn delta(&self) -> f64 {
        self.rho / (PI * self.r * self.r)
    }

    /// Total expected node count `N = δπ(Pr)² = ρP²`.
    pub fn n_total(&self) -> f64 {
        self.rho * f64::from(self.p) * f64::from(self.p)
    }
}

/// Result of running the ring recursion: per-phase, per-ring expected
/// newly-informed counts plus broadcast accounting.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RingProfile {
    /// The configuration that produced this profile.
    pub config: RingModelConfig,
    /// `new_by_phase[i][j-1]` = `n_j^{i+1}` (phase `i+1`, ring `j`).
    pub new_by_phase: Vec<Vec<f64>>,
    /// Expected broadcasts performed in each phase (phase 1 = the source).
    pub broadcasts_by_phase: Vec<f64>,
    /// Per-phase per-broadcast delivery success rate and its weight
    /// (number of broadcasts), when tracked — used for Fig. 12.
    pub success_rate_by_phase: Vec<(f64, f64)>,
}

impl RingProfile {
    /// Total expected nodes informed (excluding the source).
    pub fn total_informed(&self) -> f64 {
        self.new_by_phase.iter().flatten().sum()
    }

    /// Expected newly informed nodes in a given phase (1-based).
    pub fn new_in_phase(&self, phase: usize) -> f64 {
        self.new_by_phase
            .get(phase.wrapping_sub(1))
            .map_or(0.0, |v| v.iter().sum())
    }

    /// Number of executed phases.
    pub fn phases(&self) -> usize {
        self.new_by_phase.len()
    }

    /// Collapses the profile into the metric-ready [`PhaseSeries`].
    ///
    /// The informed count includes the source (the `+1`); it is clamped to
    /// `N` to absorb the source's double-counting within ring `R_1`'s
    /// expectation (a ≤ 0.2% effect at the paper's scales).
    pub fn phase_series(&self) -> PhaseSeries {
        let n = self.config.n_total();
        let mut informed = Vec::with_capacity(self.new_by_phase.len());
        let mut cum = 1.0; // the source
        for per_ring in &self.new_by_phase {
            cum += per_ring.iter().sum::<f64>();
            informed.push(cum.min(n));
        }
        let mut bc = Vec::with_capacity(self.broadcasts_by_phase.len());
        let mut b = 0.0;
        for &x in &self.broadcasts_by_phase {
            b += x;
            bc.push(b);
        }
        PhaseSeries {
            n_total: n,
            informed_cum: informed,
            broadcasts_cum: bc,
        }
    }

    /// Broadcast-weighted average per-broadcast success rate over the whole
    /// execution (empty tracking → `None`).
    pub fn mean_success_rate(&self) -> Option<f64> {
        let (num, den) = self
            .success_rate_by_phase
            .iter()
            .fold((0.0, 0.0), |(n, d), &(rate, w)| (n + rate * w, d + w));
        if den > 0.0 {
            Some(num / den)
        } else {
            None
        }
    }
}

/// The analytical PB_CAM model.
///
/// All ρ/p-independent state (geometry tables, μ evaluators) lives in a
/// [`SharedKernel`]; [`RingModel::new`] builds a private one, while
/// [`RingModel::cached`] / [`RingModel::with_kernel`] share an interned
/// kernel across every cell of a parameter sweep. The three constructors
/// produce **bitwise identical** results — the kernel's tables store the
/// exact values the closure-driven seed implementation recomputed per call.
#[derive(Debug, Clone)]
pub struct RingModel {
    config: RingModelConfig,
    kernel: Arc<SharedKernel>,
    track_success_rate: bool,
}

impl RingModel {
    /// Creates a model for the given configuration (panics on invalid
    /// configurations; use [`RingModelConfig::validate`] to check first).
    /// Builds a private kernel; prefer [`RingModel::cached`] when evaluating
    /// many configurations that differ only in `ρ` or `prob`.
    pub fn new(config: RingModelConfig) -> Self {
        config
            .validate()
            .unwrap_or_else(|e| panic!("invalid RingModelConfig: {e}")); // nss-lint: allow(panic-hygiene) — documented contract: constructors panic on invalid configs; `validate()` is the fallible path
        RingModel {
            config,
            kernel: Arc::new(SharedKernel::build(&config)),
            track_success_rate: false,
        }
    }

    /// Creates a model whose kernel is interned in the process-wide
    /// [`KernelCache`]: the first call per `(P, r, quad_points, s, mode,
    /// cs_factor)` fingerprint builds the tables, every later call — from
    /// any thread — reuses them.
    pub fn cached(config: RingModelConfig) -> Self {
        config
            .validate()
            .unwrap_or_else(|e| panic!("invalid RingModelConfig: {e}")); // nss-lint: allow(panic-hygiene) — documented contract: constructors panic on invalid configs; `validate()` is the fallible path
        RingModel {
            config,
            kernel: KernelCache::global().get(&config),
            track_success_rate: false,
        }
    }

    /// Creates a model over an explicitly shared kernel (e.g. one
    /// [`KernelCache::get`] handed to every worker of a sweep). Panics if
    /// the kernel was built for a different fingerprint.
    pub fn with_kernel(config: RingModelConfig, kernel: Arc<SharedKernel>) -> Self {
        config
            .validate()
            .unwrap_or_else(|e| panic!("invalid RingModelConfig: {e}")); // nss-lint: allow(panic-hygiene) — documented contract: constructors panic on invalid configs; `validate()` is the fallible path
        assert!(
            kernel.matches(&config),
            "kernel fingerprint {:?} does not serve this configuration",
            kernel.key()
        );
        RingModel {
            config,
            kernel,
            track_success_rate: false,
        }
    }

    /// The shared kernel backing this model.
    pub fn kernel(&self) -> &Arc<SharedKernel> {
        &self.kernel
    }

    /// Enables per-phase success-rate tracking (costs one extra integral
    /// per ring per phase; needed only for the Fig. 12 analysis).
    pub fn with_success_rate_tracking(mut self) -> Self {
        self.track_success_rate = true;
        self
    }

    /// The configuration.
    pub fn config(&self) -> &RingModelConfig {
        &self.config
    }

    /// Runs the recursion to convergence (or the phase cap) and returns the
    /// execution profile.
    ///
    /// ```
    /// use nss_analysis::ring_model::{RingModel, RingModelConfig};
    ///
    /// let profile = RingModel::new(RingModelConfig::paper(60.0, 0.2)).run();
    /// // Phase 1 informs exactly ring R1 (rho nodes).
    /// assert!((profile.new_in_phase(1) - 60.0).abs() < 1e-9);
    /// let reach = profile.phase_series().final_reachability();
    /// assert!(reach > 0.5 && reach <= 1.0);
    /// ```
    pub fn run(&self) -> RingProfile {
        let cfg = &self.config;
        let kernel = &*self.kernel;
        let tables = &kernel.tables;
        let p_rings = cfg.p as usize;
        let delta = cfg.delta();
        let ring_areas: &[f64] = &kernel.ring_areas;
        // Dead nodes never receive: each ring only has `a·δ·C_j` live slots.
        // (×1.0 is IEEE-exact, so the default plan is bitwise unchanged.)
        let capacity: Vec<f64> = ring_areas
            .iter()
            .map(|&c| delta * c * cfg.alive_frac)
            .collect();

        // Per-run μ memos: lattice values are pure, so caching them changes
        // nothing but the cost of the inner loop.
        let mut mu_memo = MuMemo::new(kernel.mu);
        let mut mu_cs_memo = MuCsMemo::new(kernel.mu_cs);
        // Per-abscissa transmitter-count scratch, reused across rings/phases.
        let n_abs = tables.abscissae().len();
        let mut gtx = vec![0.0f64; n_abs];
        let mut hcs = vec![0.0f64; n_abs];

        // Phase 1: the source's broadcast informs all of (the live part of)
        // ring R_1, thinned by the per-link delivery probability.
        let mut first = vec![0.0; p_rings];
        first[0] = capacity[0] * cfg.link_q;
        let mut cum: Vec<f64> = first.clone();
        let mut new_by_phase = vec![first];
        let mut broadcasts = vec![1.0f64];
        let mut success_rates: Vec<(f64, f64)> = Vec::new();
        if self.track_success_rate {
            // Phase 1: single transmitter, no contention → success rate 1.
            success_rates.push((1.0, 1.0));
        }

        for _phase in 2..=cfg.max_phases {
            let prev = new_by_phase.last().expect("at least phase 1 exists"); // nss-lint: allow(panic-hygiene) — loop starts at phase 2, so phase 1 was pushed unconditionally above
            let prev_total: f64 = prev.iter().sum();
            // Transmitters this phase: last phase's newly informed, thinned
            // by the broadcast probability.
            let tx_total = cfg.prob * prev_total;
            broadcasts.push(tx_total);
            if tx_total <= 0.0 {
                new_by_phase.push(vec![0.0; p_rings]);
                if self.track_success_rate {
                    success_rates.push((0.0, 0.0));
                }
                break;
            }

            let mut new = vec![0.0; p_rings];
            let mut sr_num = 0.0f64;
            let mut sr_den = 0.0f64;
            for j in 1..=cfg.p {
                let ji = j as usize - 1;
                let remaining = (capacity[ji] - cum[ji]).max(0.0);
                let inner_radius = (f64::from(j) - 1.0) * cfg.r;

                let need_main = remaining > 1e-12;
                if !need_main && !self.track_success_rate {
                    continue;
                }

                // Expected informed-in-previous-phase neighbors of a node at
                // each quadrature offset x_i in ring j, thinned to expected
                // transmitters: g(x_i)·p. Accumulated per point in ascending
                // k order — the same term order as the seed's closure, with
                // A(x, k) read from the table instead of recomputed.
                let lo = j.saturating_sub(1).max(1);
                let hi = (j + 1).min(cfg.p);
                gtx.fill(0.0);
                for k in lo..=hi {
                    let ki = k as usize - 1;
                    if prev[ki] > 0.0 {
                        let (pk, area) = (prev[ki], ring_areas[ki]);
                        for (g, &a) in gtx.iter_mut().zip(tables.a_row(j, k)) {
                            *g += pk * a / area;
                        }
                    }
                }
                for g in gtx.iter_mut() {
                    *g *= cfg.prob;
                }

                if need_main {
                    // Carrier sense also needs h(x_i): expected informed count
                    // in the carrier annulus (one ring further each way).
                    if let CollisionRule::CarrierSense { .. } = cfg.collision {
                        let lo = j.saturating_sub(2).max(1);
                        let hi = (j + 2).min(cfg.p);
                        hcs.fill(0.0);
                        for k in lo..=hi {
                            let ki = k as usize - 1;
                            if prev[ki] > 0.0 {
                                let (pk, area) = (prev[ki], ring_areas[ki]);
                                for (h, &b) in hcs.iter_mut().zip(tables.b_row(j, k)) {
                                    *h += pk * b / area;
                                }
                            }
                        }
                    }
                    let integral = tables.integrate(|i, x| {
                        let k_tx = gtx[i];
                        let success = match cfg.collision {
                            CollisionRule::TransmissionRange => mu_memo.eval(k_tx),
                            CollisionRule::CarrierSense { .. } => {
                                mu_cs_memo.eval(k_tx, hcs[i] * cfg.prob)
                            }
                        };
                        // A collision-free slot still delivers only w.p. q.
                        (inner_radius + x) * (success * cfg.link_q)
                    });
                    new[ji] = (2.0 * PI * integral * remaining / ring_areas[ji]).min(remaining);
                }

                if self.track_success_rate {
                    // Per-(sender, neighbor) delivery probability aggregated
                    // over all potential receivers in ring j (density δ):
                    //   num += δ ∫ w(x) K(x) q^{K(x)−1} dx,  den += δ ∫ w(x) K(x) dx
                    // with K(x) the expected transmitter count in range and
                    // q = (s−1)/s the per-slot avoidance probability.
                    let q = (f64::from(cfg.s) - 1.0) / f64::from(cfg.s);
                    // nss-lint: allow(float-safety) — q = (s−1)/s is exactly 0.0 iff s = 1; an exact branch, not a tolerance test
                    let single_slot = q == 0.0;
                    let num = tables.integrate(|i, x| {
                        let k = gtx[i];
                        let clean = if k <= 0.0 {
                            0.0
                        } else if single_slot {
                            // s = 1: only an uncontended sender delivers.
                            if k <= 1.0 {
                                k
                            } else {
                                0.0
                            }
                        } else {
                            k * q.powf((k - 1.0).max(0.0))
                        };
                        (inner_radius + x) * (clean * cfg.link_q)
                    });
                    let den = tables.integrate(|i, x| (inner_radius + x) * gtx[i]);
                    sr_num += 2.0 * PI * delta * num;
                    sr_den += 2.0 * PI * delta * den;
                }
            }

            for (c, n) in cum.iter_mut().zip(&new) {
                *c += n;
            }
            let total_new: f64 = new.iter().sum();
            new_by_phase.push(new);
            if self.track_success_rate {
                let rate = if sr_den > 0.0 { sr_num / sr_den } else { 0.0 };
                success_rates.push((rate, tx_total));
            }
            if total_new < cfg.min_new {
                break;
            }
        }

        // Flush the per-run memo statistics into the global registry once —
        // the inner loop only touches plain (non-atomic) fields.
        if nss_obs::enabled() {
            nss_obs::counter!("analysis.ring_runs").inc();
            let (h, m) = mu_memo.stats();
            nss_obs::counter!("analysis.mu_memo.hit").add(h);
            nss_obs::counter!("analysis.mu_memo.miss").add(m);
            let (h, m) = mu_cs_memo.stats();
            nss_obs::counter!("analysis.mu_cs_memo.hit").add(h);
            nss_obs::counter!("analysis.mu_cs_memo.miss").add(m);
        }

        RingProfile {
            config: *self.config(),
            new_by_phase,
            broadcasts_by_phase: broadcasts,
            success_rate_by_phase: success_rates,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring_geometry::RingGeometry;

    fn run(rho: f64, prob: f64) -> RingProfile {
        RingModel::new(RingModelConfig::paper(rho, prob)).run()
    }

    #[test]
    fn constructors_agree_bitwise() {
        for collision in [
            CollisionRule::TransmissionRange,
            CollisionRule::CARRIER_SENSE_2R,
        ] {
            let mut cfg = RingModelConfig::paper(80.0, 0.4);
            cfg.collision = collision;
            let fresh = RingModel::new(cfg).with_success_rate_tracking().run();
            let cached = RingModel::cached(cfg).with_success_rate_tracking().run();
            let explicit = RingModel::with_kernel(cfg, KernelCache::global().get(&cfg))
                .with_success_rate_tracking()
                .run();
            for other in [&cached, &explicit] {
                assert_eq!(fresh.new_by_phase.len(), other.new_by_phase.len());
                for (a, b) in fresh.new_by_phase.iter().zip(&other.new_by_phase) {
                    for (x, y) in a.iter().zip(b) {
                        assert_eq!(x.to_bits(), y.to_bits());
                    }
                }
                for (x, y) in fresh
                    .broadcasts_by_phase
                    .iter()
                    .zip(&other.broadcasts_by_phase)
                {
                    assert_eq!(x.to_bits(), y.to_bits());
                }
                for (&(r1, w1), &(r2, w2)) in fresh
                    .success_rate_by_phase
                    .iter()
                    .zip(&other.success_rate_by_phase)
                {
                    assert_eq!(r1.to_bits(), r2.to_bits());
                    assert_eq!(w1.to_bits(), w2.to_bits());
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "does not serve")]
    fn mismatched_kernel_rejected() {
        let cfg = RingModelConfig::paper(80.0, 0.4);
        let kernel = KernelCache::global().get(&cfg);
        let mut other = cfg;
        other.quad_points = 48;
        let _ = RingModel::with_kernel(other, kernel);
    }

    #[test]
    fn phase_one_informs_exactly_ring_one() {
        let prof = run(60.0, 0.5);
        assert!((prof.new_by_phase[0][0] - 60.0).abs() < 1e-9);
        for j in 1..5 {
            assert_eq!(prof.new_by_phase[0][j], 0.0);
        }
        assert_eq!(prof.broadcasts_by_phase[0], 1.0);
    }

    #[test]
    fn zero_probability_stops_after_phase_one() {
        let prof = run(60.0, 0.0);
        assert_eq!(prof.phases(), 2); // phase 2 records 0 broadcasts, stops
        assert!((prof.total_informed() - 60.0).abs() < 1e-9);
        assert_eq!(prof.broadcasts_by_phase[1], 0.0);
    }

    #[test]
    fn ring_capacities_never_exceeded() {
        for &(rho, p) in &[(20.0, 1.0), (60.0, 0.3), (140.0, 0.05), (140.0, 1.0)] {
            let prof = run(rho, p);
            let cfg = prof.config;
            let delta = cfg.delta();
            let geom = RingGeometry::new(cfg.p, cfg.r);
            let mut cum = vec![0.0; cfg.p as usize];
            for per_ring in &prof.new_by_phase {
                for (j, &v) in per_ring.iter().enumerate() {
                    assert!(v >= -1e-12, "negative reception count");
                    cum[j] += v;
                    let cap = delta * geom.ring_area(j as u32 + 1);
                    assert!(
                        cum[j] <= cap * (1.0 + 1e-9),
                        "ring {} overfilled: {} > {}",
                        j + 1,
                        cum[j],
                        cap
                    );
                }
            }
        }
    }

    #[test]
    fn information_travels_at_most_one_ring_per_phase() {
        let prof = run(60.0, 0.5);
        for (i, per_ring) in prof.new_by_phase.iter().enumerate() {
            for (j, &v) in per_ring.iter().enumerate() {
                if j > i {
                    assert!(
                        v < 1e-9,
                        "ring {} informed in phase {} (faster than 1 ring/phase)",
                        j + 1,
                        i + 1
                    );
                }
            }
        }
    }

    #[test]
    fn flooding_dense_network_suffers_collisions() {
        // At rho = 140 and p = 1 collisions should strongly suppress
        // progress relative to a well-tuned probability.
        let flood = run(140.0, 1.0);
        let tuned = run(140.0, 0.1);
        let sf = flood.phase_series();
        let st = tuned.phase_series();
        let rf = sf.reachability_at_latency(5.0);
        let rt = st.reachability_at_latency(5.0);
        assert!(
            rt > rf + 0.1,
            "tuned p should beat flooding at high density: {rt} vs {rf}"
        );
    }

    #[test]
    fn moderate_probability_reaches_most_of_sparse_network() {
        let prof = run(20.0, 0.6);
        let reach = prof.phase_series().final_reachability();
        assert!(reach > 0.5, "expected decent reachability, got {reach}");
    }

    #[test]
    fn phase_series_is_valid_and_monotone() {
        for &(rho, p) in &[(20.0, 0.2), (80.0, 0.6), (140.0, 1.0)] {
            let s = run(rho, p).phase_series();
            s.validate().expect("invalid PhaseSeries from ring model");
        }
    }

    #[test]
    fn broadcast_accounting_consistent() {
        let prof = run(40.0, 0.5);
        // broadcasts in phase i+1 = p · new receptions in phase i
        for i in 1..prof.broadcasts_by_phase.len() {
            let expect = 0.5 * prof.new_in_phase(i);
            assert!(
                (prof.broadcasts_by_phase[i] - expect).abs() < 1e-9,
                "phase {}: {} vs {}",
                i + 1,
                prof.broadcasts_by_phase[i],
                expect
            );
        }
    }

    #[test]
    fn higher_density_same_prob_more_collisions_per_node() {
        // Within a 5-phase budget, reachability at p=1 should *drop* as the
        // network gets denser (the paper's headline motivation).
        let r20 = run(20.0, 1.0).phase_series().reachability_at_latency(5.0);
        let r140 = run(140.0, 1.0).phase_series().reachability_at_latency(5.0);
        assert!(
            r140 < r20,
            "flooding should degrade with density: rho=140 {r140} vs rho=20 {r20}"
        );
    }

    #[test]
    fn carrier_sense_reduces_reachability() {
        let base = RingModelConfig::paper(60.0, 0.3);
        let mut cs = base;
        cs.collision = CollisionRule::CARRIER_SENSE_2R;
        let r_base = RingModel::new(base)
            .run()
            .phase_series()
            .reachability_at_latency(5.0);
        let r_cs = RingModel::new(cs)
            .run()
            .phase_series()
            .reachability_at_latency(5.0);
        assert!(
            r_cs < r_base,
            "carrier sensing must not help: cs {r_cs} vs base {r_base}"
        );
        assert!(r_cs > 0.0, "carrier-sense run should still make progress");
    }

    #[test]
    fn success_rate_tracked_and_sane() {
        let prof = RingModel::new(RingModelConfig::paper(60.0, 1.0))
            .with_success_rate_tracking()
            .run();
        assert_eq!(prof.success_rate_by_phase.len(), prof.phases());
        assert_eq!(prof.success_rate_by_phase[0], (1.0, 1.0));
        for &(rate, w) in &prof.success_rate_by_phase {
            assert!((0.0..=1.0).contains(&rate), "rate {rate} out of range");
            assert!(w >= 0.0);
        }
        let mean = prof.mean_success_rate().unwrap();
        assert!(mean > 0.0 && mean < 1.0, "mean success rate {mean}");
    }

    #[test]
    fn success_rate_drops_with_density() {
        let sr = |rho: f64| {
            RingModel::new(RingModelConfig::paper(rho, 1.0))
                .with_success_rate_tracking()
                .run()
                .mean_success_rate()
                .unwrap()
        };
        let lo = sr(20.0);
        let hi = sr(140.0);
        assert!(hi < lo, "denser flooding must collide more: {hi} !< {lo}");
    }

    #[test]
    fn quadrature_resolution_converged() {
        let mut coarse_cfg = RingModelConfig::paper(80.0, 0.4);
        coarse_cfg.quad_points = 32;
        let mut fine_cfg = coarse_cfg;
        fine_cfg.quad_points = 256;
        let a = RingModel::new(coarse_cfg).run().phase_series();
        let b = RingModel::new(fine_cfg).run().phase_series();
        let ra = a.reachability_at_latency(5.0);
        let rb = b.reachability_at_latency(5.0);
        assert!(
            (ra - rb).abs() < 1e-3,
            "quadrature not converged: 32pt {ra} vs 256pt {rb}"
        );
    }

    #[test]
    fn config_validation() {
        let mut c = RingModelConfig::paper(60.0, 0.5);
        assert!(c.validate().is_ok());
        c.prob = 1.5;
        assert!(c.validate().is_err());
        c = RingModelConfig::paper(60.0, 0.5);
        c.rho = 0.0;
        assert!(c.validate().is_err());
        c = RingModelConfig::paper(60.0, 0.5);
        c.s = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn link_loss_degrades_reachability_monotonically() {
        let mut prev = f64::INFINITY;
        for q in [1.0, 0.9, 0.7, 0.5, 0.3] {
            let mut cfg = RingModelConfig::paper(60.0, 0.4);
            cfg.link_q = q;
            let reach = RingModel::new(cfg)
                .run()
                .phase_series()
                .reachability_at_latency(10.0);
            assert!(
                reach <= prev + 1e-12,
                "q={q}: reachability {reach} rose above lossless-er {prev}"
            );
            prev = reach;
        }
        assert!(prev > 0.0, "even q=0.3 should inform someone");
    }

    #[test]
    fn alive_fraction_caps_reachability() {
        let mut cfg = RingModelConfig::paper(60.0, 0.6);
        cfg.alive_frac = 0.5;
        let s = RingModel::new(cfg).run().phase_series();
        let reach = s.final_reachability();
        assert!(
            reach <= 0.5 + 1e-9,
            "half-dead field cannot exceed 0.5 reachability: {reach}"
        );
        assert!(reach > 0.2, "live half should still mostly be reached");
        s.validate().expect("lossy profile still a valid series");
    }

    #[test]
    fn default_fault_fields_are_bitwise_no_ops() {
        // A config carrying explicit `link_q = 1.0, alive_frac = 1.0` must
        // take the exact multiplication-by-one path: same kernel, same bits
        // as the paper defaults.
        let cfg = RingModelConfig::paper(80.0, 0.4);
        assert_eq!(cfg.link_q, 1.0);
        assert_eq!(cfg.alive_frac, 1.0);
        let a = RingModel::cached(cfg).run();
        let mut lossy = cfg;
        lossy.link_q = 0.8;
        // Fault fields are not part of the kernel fingerprint: the lossy
        // config shares the interned kernel with the lossless one.
        let m = RingModel::cached(lossy);
        assert!(Arc::ptr_eq(RingModel::cached(cfg).kernel(), m.kernel()));
        let b = m.run();
        assert!(
            a.total_informed() > b.total_informed(),
            "20% loss must shrink expected informed count"
        );
    }

    #[test]
    fn fault_field_validation() {
        let mut c = RingModelConfig::paper(60.0, 0.5);
        c.link_q = 1.2;
        assert!(matches!(
            c.validate(),
            Err(ConfigError::OutOfUnitRange {
                field: "link_q",
                ..
            })
        ));
        c = RingModelConfig::paper(60.0, 0.5);
        c.alive_frac = -0.1;
        assert!(c.validate().is_err());
    }

    #[test]
    fn n_total_matches_paper_counts() {
        // rho=20..140, P=5 → N = 500..3500
        assert!((RingModelConfig::paper(20.0, 0.1).n_total() - 500.0).abs() < 1e-9);
        assert!((RingModelConfig::paper(140.0, 0.1).n_total() - 3500.0).abs() < 1e-9);
    }
}
