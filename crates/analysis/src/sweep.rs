//! Parallel (density × probability) parameter sweeps.
//!
//! Every figure of the paper's evaluation is a grid over densities
//! ρ ∈ {20..140} and probabilities p. Grid points are independent, so they
//! parallelize embarrassingly; this module fans them out over scoped
//! threads and reassembles the grid in order.

use crate::optimize::{Objective, Optimum};
use crate::ring_model::{RingModel, RingModelConfig};
use crate::tables::KernelCache;
use nss_model::metrics::PhaseSeries;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Results of a full (ρ × p) sweep of the analytical model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DensitySweep {
    /// Base configuration (its `rho` and `prob` are overridden per cell).
    pub base: RingModelConfig,
    /// Density axis.
    pub rhos: Vec<f64>,
    /// Probability axis.
    pub probs: Vec<f64>,
    /// `grid[ri][pi]` = phase series at `(rhos[ri], probs[pi])`.
    pub grid: Vec<Vec<PhaseSeries>>,
}

impl DensitySweep {
    /// The paper's density axis: 20, 40, …, 140.
    pub fn paper_rhos() -> Vec<f64> {
        (1..=7).map(|i| f64::from(i) * 20.0).collect()
    }

    /// Runs the sweep on up to `threads` worker threads (0 = available
    /// parallelism).
    pub fn run(base: RingModelConfig, rhos: &[f64], probs: &[f64], threads: usize) -> Self {
        let cells: Vec<(usize, usize)> = (0..rhos.len())
            .flat_map(|ri| (0..probs.len()).map(move |pi| (ri, pi)))
            .collect();
        let nworkers = if threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            threads
        }
        .min(cells.len().max(1));

        // One shared kernel serves every cell: the geometry/μ tables do not
        // depend on ρ or p, so workers only run the phase recursion.
        let kernel = KernelCache::global().get(&base);
        // Pre-grow the shared μ DP table past the largest contender count
        // any cell can see (g(x)·p ≤ ρ_max), so no worker ever takes the
        // RwLock write path mid-sweep.
        let rho_max = rhos.iter().copied().fold(0.0f64, f64::max);
        kernel.mu_table.ensure(rho_max.ceil() as u64 + 1);

        let mut results: Vec<Option<PhaseSeries>> = vec![None; cells.len()];
        {
            // Work-stealing via a shared atomic cursor; finished cells are
            // streamed back over a channel (same idiom as `sim::runner`) and
            // placed by index by the scope's owning thread.
            let cursor = AtomicUsize::new(0);
            let (cursor, cells) = (&cursor, &cells);
            let (tx, rx) = crossbeam::channel::unbounded::<(usize, PhaseSeries)>();
            std::thread::scope(|scope| {
                for _ in 0..nworkers {
                    let tx = tx.clone();
                    let kernel = Arc::clone(&kernel);
                    scope.spawn(move || loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= cells.len() {
                            break;
                        }
                        let (ri, pi) = cells[i];
                        let mut cfg = base;
                        cfg.rho = rhos[ri];
                        cfg.prob = probs[pi];
                        // Gate the clock reads themselves on the obs
                        // feature so uninstrumented builds pay nothing.
                        // nss-lint: allow(nondeterminism-taint) — feeds the analysis.sweep.cell_seconds histogram only; the series sent downstream is computed from cfg alone
                        let cell_start = nss_obs::enabled().then(std::time::Instant::now);
                        let series = RingModel::with_kernel(cfg, Arc::clone(&kernel))
                            .run()
                            .phase_series();
                        if let Some(start) = cell_start {
                            nss_obs::observe!(
                                "analysis.sweep.cell_seconds",
                                start.elapsed().as_secs_f64()
                            );
                            nss_obs::counter!("analysis.sweep.cells").inc();
                        }
                        // The receiver outlives this scope; a closed channel
                        // means the collector is unwinding, so stop quietly
                        // rather than panic on top of a panic.
                        if tx.send((i, series)).is_err() {
                            break;
                        }
                    });
                }
                drop(tx); // workers hold the remaining senders
                for (i, series) in rx {
                    results[i] = Some(series);
                }
            });
        }

        let mut grid: Vec<Vec<PhaseSeries>> = Vec::with_capacity(rhos.len());
        let mut it = results.into_iter();
        for _ in 0..rhos.len() {
            let row: Vec<PhaseSeries> = (0..probs.len())
                // nss-lint: allow(panic-hygiene) — the cursor protocol claims every index exactly once (exhaustively checked by tests/loom_sweep.rs), so a missing cell is unreachable
                .map(|_| it.next().flatten().expect("sweep cell missing"))
                .collect();
            grid.push(row);
        }
        DensitySweep {
            base,
            rhos: rhos.to_vec(),
            probs: probs.to_vec(),
            grid,
        }
    }

    /// Objective values over the grid: `values[ri][pi]`, `None` where the
    /// constraint is infeasible.
    pub fn evaluate(&self, obj: Objective) -> Vec<Vec<Option<f64>>> {
        self.grid
            .iter()
            .map(|row| row.iter().map(|s| obj.evaluate(s)).collect())
            .collect()
    }

    /// Per-density optimum (the Fig. Nb panels): `(rho, Optimum)` for each
    /// density where at least one grid point is feasible.
    pub fn optima(&self, obj: Objective) -> Vec<(f64, Option<Optimum>)> {
        self.evaluate(obj)
            .iter()
            .zip(&self.rhos)
            .map(|(row, &rho)| {
                let mut best: Option<Optimum> = None;
                for (v, &p) in row.iter().zip(&self.probs) {
                    let Some(v) = *v else { continue };
                    let replace = match best {
                        None => true,
                        Some(b) => {
                            if obj.is_max() {
                                v > b.value
                            } else {
                                v < b.value
                            }
                        }
                    };
                    if replace {
                        best = Some(Optimum { prob: p, value: v });
                    }
                }
                (rho, best)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_sweep(threads: usize) -> DensitySweep {
        let mut base = RingModelConfig::paper(20.0, 0.5);
        base.quad_points = 24;
        let rhos = [20.0, 80.0, 140.0];
        let probs: Vec<f64> = (1..=10).map(|i| f64::from(i) / 10.0).collect();
        DensitySweep::run(base, &rhos, &probs, threads)
    }

    #[test]
    fn grid_shape_and_alignment() {
        let s = small_sweep(4);
        assert_eq!(s.grid.len(), 3);
        assert!(s.grid.iter().all(|r| r.len() == 10));
        // n_total scales with rho: first row 20·25=500, last 140·25=3500.
        assert!((s.grid[0][0].n_total - 500.0).abs() < 1e-9);
        assert!((s.grid[2][9].n_total - 3500.0).abs() < 1e-9);
    }

    #[test]
    fn parallel_matches_sequential() {
        let a = small_sweep(1);
        let b = small_sweep(4);
        for (ra, rb) in a.grid.iter().zip(&b.grid) {
            for (sa, sb) in ra.iter().zip(rb) {
                assert_eq!(sa.informed_cum, sb.informed_cum);
                assert_eq!(sa.broadcasts_cum, sb.broadcasts_cum);
            }
        }
    }

    #[test]
    fn optima_extraction() {
        let s = small_sweep(0);
        let optima = s.optima(Objective::MaxReachAtLatency { phases: 5.0 });
        assert_eq!(optima.len(), 3);
        for (rho, opt) in &optima {
            let opt = opt.expect("max objective always feasible");
            assert!(opt.value > 0.0 && opt.value <= 1.0, "rho={rho}");
            assert!(s.probs.contains(&opt.prob));
        }
        // Optimal p falls (weakly) with density.
        let p0 = optima[0].1.unwrap().prob;
        let p2 = optima[2].1.unwrap().prob;
        assert!(p2 <= p0, "p* should not grow with density: {p0} → {p2}");
    }

    #[test]
    fn infeasible_cells_are_none() {
        let s = small_sweep(0);
        let vals = s.evaluate(Objective::MinLatencyForReach { target: 0.999 });
        // Some cell must be infeasible at 99.9% reachability under CAM.
        assert!(vals.iter().flatten().any(|v| v.is_none()));
    }

    #[test]
    fn paper_rhos_axis() {
        assert_eq!(
            DensitySweep::paper_rhos(),
            vec![20.0, 40.0, 60.0, 80.0, 100.0, 120.0, 140.0]
        );
    }
}
