//! Ring decomposition of the circular sensor field (§4.2.2 / Appendix A).
//!
//! The field of radius `P·r` is partitioned into `P` concentric rings
//! `R_1..R_P` of width `r`. For a node `u` in ring `R_j` at distance
//! `x ∈ [0, r]` from the ring's inner boundary:
//!
//! * `A(x, k)` — area of ring `R_k` within `u`'s transmission range `r`.
//!   Non-zero only for `k ∈ {j−1, j, j+1}`.
//! * `B(x, k)` — area of ring `R_k` within `u`'s carrier-sense annulus
//!   `(r, 2r]`. Non-zero only for `k ∈ {j−2, …, j+2}`.
//!
//! The paper expresses these through the border-distance lens function
//! `f(D1, D2, x)`; we compute them from the generic center-distance lens
//! area, which also gives the obvious partition invariants used as tests:
//! `Σ_k A(x, k) = π r²` and `Σ_k B(x, k) = π(2r)² − πr²` when the whole
//! disk lies inside the field.

use nss_model::geometry::{annulus_area, disk_area, lens_area};
use serde::{Deserialize, Serialize};

/// Geometry of a `P`-ring field with ring width (= transmission radius) `r`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RingGeometry {
    /// Number of rings `P` (field radius is `P·r`).
    pub p: u32,
    /// Ring width = transmission radius `r`.
    pub r: f64,
}

impl RingGeometry {
    /// Creates the geometry; `P ≥ 1`, `r > 0`.
    pub fn new(p: u32, r: f64) -> Self {
        assert!(p >= 1, "need at least one ring");
        assert!(r > 0.0, "ring width must be positive");
        RingGeometry { p, r }
    }

    /// Area `C_j` of ring `R_j` (`j` is 1-based; out-of-range → 0).
    pub fn ring_area(&self, j: u32) -> f64 {
        if j == 0 || j > self.p {
            return 0.0;
        }
        annulus_area((f64::from(j) - 1.0) * self.r, f64::from(j) * self.r)
    }

    /// Total field area `π (P r)²`.
    pub fn field_area(&self) -> f64 {
        disk_area(f64::from(self.p) * self.r)
    }

    /// Radius of a node in ring `R_j` at offset `x ∈ [0, r]` from the
    /// ring's inner boundary.
    #[inline]
    pub fn node_radius(&self, j: u32, x: f64) -> f64 {
        (f64::from(j) - 1.0) * self.r + x
    }

    /// Area of ring `R_k` within distance `disk_radius` of a point at
    /// distance `center_radius` from the field center — the generic form
    /// underlying both `A` and `B`.
    pub fn area_in_ring(&self, center_radius: f64, disk_radius: f64, k: u32) -> f64 {
        if k == 0 || k > self.p {
            return 0.0;
        }
        let outer = lens_area(f64::from(k) * self.r, disk_radius, center_radius);
        let inner = lens_area((f64::from(k) - 1.0) * self.r, disk_radius, center_radius);
        (outer - inner).max(0.0)
    }

    /// `A(x, k)`: area of ring `R_k` within transmission range of a node in
    /// ring `R_j` at offset `x`.
    pub fn a_area(&self, j: u32, x: f64, k: u32) -> f64 {
        debug_assert!((0.0..=self.r * (1.0 + 1e-12)).contains(&x));
        self.area_in_ring(self.node_radius(j, x), self.r, k)
    }

    /// `B(x, k)`: area of ring `R_k` within the carrier-sense annulus
    /// `(r, cs_factor·r]` of a node in ring `R_j` at offset `x`.
    pub fn b_area(&self, j: u32, x: f64, k: u32, cs_factor: f64) -> f64 {
        debug_assert!(cs_factor >= 1.0);
        let c = self.node_radius(j, x);
        (self.area_in_ring(c, cs_factor * self.r, k) - self.area_in_ring(c, self.r, k)).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn ring_areas_sum_to_field() {
        let g = RingGeometry::new(5, 1.5);
        let total: f64 = (1..=5).map(|j| g.ring_area(j)).sum();
        assert!((total - g.field_area()).abs() < 1e-9);
        assert_eq!(g.ring_area(0), 0.0);
        assert_eq!(g.ring_area(6), 0.0);
    }

    #[test]
    fn ring_area_formula() {
        // C_j = π r² (j² − (j−1)²) = π r² (2j − 1)
        let g = RingGeometry::new(4, 2.0);
        for j in 1..=4u32 {
            let expect = PI * 4.0 * f64::from(2 * j - 1);
            assert!((g.ring_area(j) - expect).abs() < 1e-9);
        }
    }

    #[test]
    fn a_partition_sums_to_disk_for_interior_nodes() {
        let g = RingGeometry::new(6, 1.0);
        // Interior node (comm disk fully inside field): j=3, any x.
        for &x in &[0.0, 0.2, 0.5, 0.9, 1.0] {
            let total: f64 = (1..=6).map(|k| g.a_area(3, x, k)).sum();
            assert!(
                (total - PI).abs() < 1e-9,
                "x={x}: A-partition sums to {total}, want π"
            );
        }
    }

    #[test]
    fn a_nonzero_only_adjacent_rings() {
        let g = RingGeometry::new(6, 1.0);
        for &x in &[0.1, 0.5, 0.9] {
            for k in 1..=6u32 {
                let a = g.a_area(3, x, k);
                if (2..=4).contains(&k) {
                    // adjacent rings can be zero only at exact boundaries
                    assert!(a >= 0.0);
                } else {
                    assert!(a < 1e-12, "A({x},{k}) = {a} should be 0 for j=3");
                }
            }
        }
    }

    #[test]
    fn a_matches_paper_formulas() {
        // Paper: A(x, j−1) = f(r(j−1), r, x) with border-parameterized f.
        let g = RingGeometry::new(6, 1.0);
        let j = 3u32;
        for &x in &[0.1, 0.4, 0.8] {
            let expect_jm1 = nss_model::geometry::lens_area_border(f64::from(j - 1), 1.0, x);
            assert!((g.a_area(j, x, j - 1) - expect_jm1).abs() < 1e-12);
            // A(x, j) = f(rj, r, x−r) − A(x, j−1)
            let expect_j =
                nss_model::geometry::lens_area_border(f64::from(j), 1.0, x - 1.0) - expect_jm1;
            assert!((g.a_area(j, x, j) - expect_j).abs() < 1e-12);
            // A(x, j+1) = πr² − A(x,j−1) − A(x,j)
            let expect_jp1 = PI - expect_jm1 - expect_j;
            assert!((g.a_area(j, x, j + 1) - expect_jp1).abs() < 1e-9);
        }
    }

    #[test]
    fn innermost_ring_has_no_inner_neighbor() {
        let g = RingGeometry::new(5, 1.0);
        for &x in &[0.0, 0.3, 1.0] {
            assert_eq!(g.a_area(1, x, 0), 0.0);
            // disk around a ring-1 node covers only rings 1 and 2
            let total = g.a_area(1, x, 1) + g.a_area(1, x, 2);
            assert!((total - PI).abs() < 1e-9);
        }
    }

    #[test]
    fn outermost_ring_disk_spills_outside() {
        let g = RingGeometry::new(5, 1.0);
        // Node near the outer edge: part of its disk leaves the field.
        let x = 0.9;
        let total: f64 = (1..=5).map(|k| g.a_area(5, x, k)).sum();
        assert!(total < PI - 1e-6, "expected spill, got full π");
        assert!(total > 0.0);
    }

    #[test]
    fn b_partition_sums_to_annulus_for_deep_interior() {
        let g = RingGeometry::new(8, 1.0);
        // Node in ring 4: carrier disk radius 2 fully inside an 8-ring field.
        for &x in &[0.0, 0.5, 1.0] {
            let total: f64 = (1..=8).map(|k| g.b_area(4, x, k, 2.0)).sum();
            let expect = PI * 4.0 - PI;
            assert!(
                (total - expect).abs() < 1e-9,
                "x={x}: B-partition {total}, want {expect}"
            );
        }
    }

    #[test]
    fn b_nonzero_only_within_two_rings() {
        let g = RingGeometry::new(9, 1.0);
        for &x in &[0.2, 0.7] {
            for k in 1..=9u32 {
                let b = g.b_area(5, x, k, 2.0);
                if (3..=7).contains(&k) {
                    assert!(b >= 0.0);
                } else {
                    assert!(b < 1e-12, "B({x},{k}) = {b} should be 0 for j=5");
                }
            }
        }
    }

    #[test]
    fn b_disjoint_from_a() {
        // B excludes the transmission disk: A + B over ring k never exceeds
        // the carrier-disk coverage of that ring.
        let g = RingGeometry::new(8, 1.0);
        for &x in &[0.1, 0.6] {
            for k in 2..=6u32 {
                let a = g.a_area(4, x, k);
                let b = g.b_area(4, x, k, 2.0);
                let cover = g.area_in_ring(g.node_radius(4, x), 2.0, k);
                assert!(a + b <= cover + 1e-9);
                assert!((a + b - cover).abs() < 1e-9, "A+B should tile the cover");
            }
        }
    }

    #[test]
    fn custom_cs_factor() {
        let g = RingGeometry::new(10, 1.0);
        // factor 3 covers rings j−3..j+3 from the deep interior
        let total: f64 = (1..=10).map(|k| g.b_area(5, 0.5, k, 3.0)).sum();
        let expect = PI * 9.0 - PI;
        assert!((total - expect).abs() < 1e-9);
        // factor 1 → empty annulus
        let total: f64 = (1..=10).map(|k| g.b_area(5, 0.5, k, 1.0)).sum();
        assert!(total < 1e-12);
    }

    #[test]
    fn node_radius_offsets() {
        let g = RingGeometry::new(5, 2.0);
        assert_eq!(g.node_radius(1, 0.0), 0.0);
        assert_eq!(g.node_radius(1, 2.0), 2.0);
        assert_eq!(g.node_radius(3, 0.5), 4.5);
    }
}
