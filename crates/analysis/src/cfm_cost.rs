//! Density-aware CFM cost functions — the refinement the paper's §6
//! proposes as future work.
//!
//! CFM's fixed per-packet costs `t_f, e_f` hide the contention resolution
//! a real substrate must perform, which is why CFM predictions diverge
//! from CAM reality as density grows. The paper suggests a middle ground:
//! *keep CFM's reliable-broadcast programming model but make its cost
//! functions density-dependent*, charging each "atomic" transmission the
//! expected number of physical attempts.
//!
//! With `sr(ρ)` the per-broadcast delivery success rate of the underlying
//! CAM channel (computable from the flooding analysis, Fig. 12), a
//! reliable transmission costs a geometric number of attempts with mean
//! `1 / sr(ρ)`, so:
//!
//! `t_f(ρ) = t_a / sr(ρ)`, `e_f(ρ) = e_a / sr(ρ)`.
//!
//! [`RefinedCfm`] tabulates `sr` over a density range once (each entry is
//! one ring-model run) and interpolates between entries.

use crate::flooding::flooding_success_rate;
use crate::ring_model::RingModelConfig;
use nss_model::comm::CostParams;
use serde::{Deserialize, Serialize};

/// Density-dependent CFM cost model (the paper's §6 proposal).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RefinedCfm {
    /// `(ρ, sr(ρ))` samples, sorted by ρ.
    table: Vec<(f64, f64)>,
}

impl RefinedCfm {
    /// Calibrates the success-rate table by running the flooding analysis
    /// at each density in `rhos` (must be non-empty; sorted internally).
    pub fn calibrate(base: RingModelConfig, rhos: &[f64]) -> Self {
        assert!(!rhos.is_empty(), "need at least one calibration density");
        let mut table: Vec<(f64, f64)> = rhos
            .iter()
            .map(|&rho| {
                let mut cfg = base;
                cfg.rho = rho;
                (rho, flooding_success_rate(cfg))
            })
            .collect();
        table.sort_by(|a, b| a.0.total_cmp(&b.0));
        RefinedCfm { table }
    }

    /// Builds the model from explicit `(ρ, sr)` samples (e.g. measured
    /// rather than analytical rates).
    pub fn from_samples(mut samples: Vec<(f64, f64)>) -> Self {
        assert!(!samples.is_empty(), "need at least one sample");
        assert!(
            samples
                .iter()
                .all(|&(r, s)| r > 0.0 && (0.0..=1.0).contains(&s)),
            "samples must have positive rho and sr in [0,1]"
        );
        samples.sort_by(|a, b| a.0.total_cmp(&b.0));
        RefinedCfm { table: samples }
    }

    /// The calibration table.
    pub fn samples(&self) -> &[(f64, f64)] {
        &self.table
    }

    /// Interpolated per-broadcast success rate at density `ρ` (clamped to
    /// the calibrated range).
    pub fn success_rate(&self, rho: f64) -> f64 {
        let t = &self.table;
        if rho <= t[0].0 {
            return t[0].1;
        }
        if rho >= t[t.len() - 1].0 {
            return t[t.len() - 1].1;
        }
        let i = t.partition_point(|&(r, _)| r < rho);
        let (r0, s0) = t[i - 1];
        let (r1, s1) = t[i];
        s0 + (rho - r0) / (r1 - r0) * (s1 - s0)
    }

    /// Expected physical attempts per reliable transmission at density `ρ`
    /// (geometric retry model).
    pub fn expected_attempts(&self, rho: f64) -> f64 {
        let sr = self.success_rate(rho);
        if sr <= 0.0 {
            f64::INFINITY
        } else {
            1.0 / sr
        }
    }

    /// Density-dependent reliable-transmission time cost `t_f(ρ)`.
    pub fn time_cost(&self, rho: f64, costs: &CostParams) -> f64 {
        costs.t_a * self.expected_attempts(rho)
    }

    /// Density-dependent reliable-transmission energy cost `e_f(ρ)`.
    pub fn energy_cost(&self, rho: f64, costs: &CostParams) -> f64 {
        costs.e_a * self.expected_attempts(rho)
    }

    /// Refined CFM flooding prediction at density `ρ`: latency (in `t_a`
    /// units) for an `ecc`-hop cascade and energy for `n` reliable
    /// broadcasts.
    pub fn flooding_prediction(
        &self,
        rho: f64,
        ecc_hops: f64,
        n_nodes: f64,
        costs: &CostParams,
    ) -> (f64, f64) {
        (
            ecc_hops * self.time_cost(rho, costs),
            n_nodes * self.energy_cost(rho, costs),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn calibrated() -> RefinedCfm {
        let mut base = RingModelConfig::paper(60.0, 1.0);
        base.quad_points = 32;
        RefinedCfm::calibrate(base, &[20.0, 60.0, 100.0, 140.0])
    }

    #[test]
    fn attempts_grow_with_density() {
        let model = calibrated();
        let mut prev = 0.0;
        for rho in [20.0, 60.0, 100.0, 140.0] {
            let attempts = model.expected_attempts(rho);
            assert!(attempts >= 1.0, "at least one attempt");
            assert!(
                attempts > prev,
                "retransmissions must grow with density: {attempts} at rho={rho}"
            );
            prev = attempts;
        }
    }

    #[test]
    fn interpolation_behaviour() {
        let model = RefinedCfm::from_samples(vec![(20.0, 0.4), (100.0, 0.1)]);
        // Endpoints exact, clamped beyond.
        assert_eq!(model.success_rate(20.0), 0.4);
        assert_eq!(model.success_rate(100.0), 0.1);
        assert_eq!(model.success_rate(5.0), 0.4);
        assert_eq!(model.success_rate(500.0), 0.1);
        // Midpoint linear.
        assert!((model.success_rate(60.0) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn costs_scale_with_base_costs() {
        let model = RefinedCfm::from_samples(vec![(50.0, 0.25)]);
        let costs = CostParams {
            t_f: 10.0,
            e_f: 20.0,
            t_a: 2.0,
            e_a: 3.0,
        };
        assert!((model.time_cost(50.0, &costs) - 8.0).abs() < 1e-12); // 2/0.25
        assert!((model.energy_cost(50.0, &costs) - 12.0).abs() < 1e-12); // 3/0.25
    }

    #[test]
    fn zero_success_rate_is_infinite_cost() {
        let model = RefinedCfm::from_samples(vec![(50.0, 0.0)]);
        assert!(model.expected_attempts(50.0).is_infinite());
    }

    #[test]
    fn flooding_prediction_shape() {
        let model = calibrated();
        let costs = CostParams::UNIT;
        let (t20, e20) = model.flooding_prediction(20.0, 5.0, 500.0, &costs);
        let (t140, e140) = model.flooding_prediction(140.0, 5.0, 3500.0, &costs);
        // Refined latency exceeds the naive 5 hops at any density...
        assert!(t20 > 5.0);
        // ...and grows superlinearly with density (retries compound on top
        // of the larger node count).
        assert!(t140 > t20);
        assert!(
            e140 / e20 > 3500.0 / 500.0,
            "energy must grow faster than N"
        );
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn empty_samples_rejected() {
        let _ = RefinedCfm::from_samples(vec![]);
    }

    #[test]
    #[should_panic(expected = "sr in [0,1]")]
    fn invalid_samples_rejected() {
        let _ = RefinedCfm::from_samples(vec![(10.0, 1.5)]);
    }
}
