//! Sharded, byte-budgeted, cold-miss-coalescing cache — the resident
//! store behind the `nss-serve` query service.
//!
//! [`crate::tables::KernelCache`] interns kernels forever: correct for a
//! batch sweep that touches a handful of configurations, wrong for a
//! long-running service answering arbitrary (ρ, quad) queries, which
//! needs an *admission-controlled* cache. [`ShardedCache`] adds the three
//! serving-stack behaviors on top of the same `BTreeMap` discipline:
//!
//! * **Sharding** — `shards` independent maps selected by a deterministic
//!   FNV-64 fingerprint of the key ([`Fingerprint`]), each behind its own
//!   [`std::sync::Mutex`], so concurrent queries for different keys never
//!   serialize on one lock.
//! * **Cold-miss coalescing** — the first thread to miss a key installs a
//!   `Slot::Building` placeholder and computes the value *outside* the
//!   shard lock; every concurrent miss for the same key blocks on a
//!   [`std::sync::Condvar`] and receives the same `Arc` when the build
//!   lands. A storm of identical cold queries costs exactly one build.
//! * **LRU / byte-budget eviction** — each shard holds at most
//!   `budget / shards` bytes of `Ready` entries (sized by
//!   [`CacheWeight::cache_bytes`]); admission evicts least-recently-used
//!   entries until the newcomer fits. An entry larger than a whole shard's
//!   budget is built and returned but **not admitted**
//!   ([`Outcome::admitted`] is `false`) — the serve layer surfaces that as
//!   `503` so operators see misconfigured `--cache-bytes` instead of
//!   silent thrash.
//!
//! The cache keeps its own always-on atomic tallies ([`CacheStats`]) so
//! behavior is testable without the `obs` feature; the serve layer mirrors
//! outcomes into `serve.cache.*` metrics.
//!
//! Per-shard state uses `BTreeMap` (not a hash map) for the same reason as
//! `KernelCache`: deterministic traversal order in reports and debug
//! dumps. Coalescing uses `std::sync::{Mutex, Condvar}` rather than the
//! vendored `parking_lot`, which deliberately omits condition variables.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};

use crate::tables::{KernelKey, SharedKernel};

/// Deterministic 64-bit FNV-1a over `bytes` — the shard-selection hash.
///
/// Stable across runs, platforms, and process restarts (unlike
/// `std::collections` hashing, which is randomly seeded), so shard
/// assignment — and therefore eviction behavior — is reproducible.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A deterministic 64-bit fingerprint used for shard selection.
pub trait Fingerprint {
    /// The fingerprint; equal keys must produce equal fingerprints.
    fn fingerprint(&self) -> u64;
}

impl Fingerprint for KernelKey {
    fn fingerprint(&self) -> u64 {
        let mut bytes = Vec::with_capacity(40);
        bytes.extend_from_slice(&self.p.to_le_bytes());
        bytes.extend_from_slice(&self.s.to_le_bytes());
        bytes.extend_from_slice(&self.r_bits.to_le_bytes());
        bytes.extend_from_slice(&(self.quad_points as u64).to_le_bytes());
        bytes.push(self.mu_mode as u8);
        match self.cs_bits {
            Some(cs) => {
                bytes.push(1);
                bytes.extend_from_slice(&cs.to_le_bytes());
            }
            None => bytes.push(0),
        }
        fnv64(&bytes)
    }
}

/// Resident size of a cache entry, charged against the byte budget.
pub trait CacheWeight {
    /// Approximate heap bytes this entry keeps resident.
    fn cache_bytes(&self) -> usize;
}

impl CacheWeight for SharedKernel {
    fn cache_bytes(&self) -> usize {
        self.bytes()
    }
}

/// How a [`ShardedCache::get_or_build`] call was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutcomeKind {
    /// The key was resident: no build, no wait.
    Hit,
    /// Another thread was already building this key; this call waited and
    /// shares that build's value.
    Coalesced,
    /// This call ran the builder.
    Built,
}

/// Result of a [`ShardedCache::get_or_build`] call.
#[derive(Debug)]
pub struct Outcome<V> {
    /// The cached (or freshly built) value.
    pub value: Arc<V>,
    /// How the value was obtained.
    pub kind: OutcomeKind,
    /// Whether the value is resident in the cache after this call.
    /// `false` means the entry exceeds a whole shard's byte budget and was
    /// returned without admission — the caller should surface capacity
    /// exhaustion (the serve layer maps this to `503`).
    pub admitted: bool,
    /// Entries evicted to admit this value (only nonzero for
    /// [`OutcomeKind::Built`]).
    pub evicted: usize,
}

/// Point-in-time tallies of cache behavior (always-on relaxed atomics).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from a resident entry.
    pub hits: u64,
    /// Lookups that found no entry (each starts a build).
    pub misses: u64,
    /// Lookups that waited on a concurrent build instead of duplicating it.
    pub coalesced: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Builds whose result exceeded the per-shard budget (not admitted).
    pub rejected: u64,
    /// Bytes currently resident across all shards.
    pub resident_bytes: usize,
    /// Entries currently resident across all shards.
    pub resident_entries: usize,
}

enum BuildState<V> {
    Pending,
    /// Build finished; `bool` is the admission verdict.
    Done(Arc<V>, bool),
    /// Builder died (panicked) — waiters must retry.
    Failed,
}

struct Build<V> {
    state: Mutex<BuildState<V>>,
    cv: Condvar,
}

enum Slot<V> {
    Ready {
        value: Arc<V>,
        bytes: usize,
        last_used: u64,
    },
    Building(Arc<Build<V>>),
}

struct ShardState<K, V> {
    map: BTreeMap<K, Slot<V>>,
    /// Monotone use-clock for LRU ordering (per shard).
    tick: u64,
    /// Resident `Ready` bytes in this shard.
    bytes: usize,
}

struct Shard<K, V> {
    state: Mutex<ShardState<K, V>>,
}

/// A sharded, coalescing, byte-budgeted LRU cache. See the
/// [module docs](self) for the design.
pub struct ShardedCache<K: Ord + Clone + Fingerprint, V: CacheWeight> {
    shards: Vec<Shard<K, V>>,
    per_shard_budget: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    coalesced: AtomicU64,
    evictions: AtomicU64,
    rejected: AtomicU64,
    resident_bytes: AtomicUsize,
    resident_entries: AtomicUsize,
}

impl<K: Ord + Clone + Fingerprint, V: CacheWeight> std::fmt::Debug for ShardedCache<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedCache")
            .field("shards", &self.shards.len())
            .field("per_shard_budget", &self.per_shard_budget)
            .field("stats", &self.stats())
            .finish()
    }
}

impl<K: Ord + Clone + Fingerprint, V: CacheWeight> ShardedCache<K, V> {
    /// A cache with `shards` independent shards sharing `budget_bytes`
    /// total (each shard owns `budget_bytes / shards`). `shards` is
    /// clamped to at least 1; a zero budget admits nothing (every build is
    /// returned un-admitted).
    pub fn new(shards: usize, budget_bytes: usize) -> Self {
        let shards = shards.max(1);
        ShardedCache {
            shards: (0..shards)
                .map(|_| Shard {
                    state: Mutex::new(ShardState {
                        map: BTreeMap::new(),
                        tick: 0,
                        bytes: 0,
                    }),
                })
                .collect(),
            per_shard_budget: budget_bytes / shards,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            resident_bytes: AtomicUsize::new(0),
            resident_entries: AtomicUsize::new(0),
        }
    }

    /// The number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The byte budget of one shard (`total / shards`).
    pub fn per_shard_budget(&self) -> usize {
        self.per_shard_budget
    }

    /// Returns the value for `key`, building it with `build` on a cold
    /// miss. Concurrent misses for the same key coalesce onto one build;
    /// admission may evict LRU entries. The builder runs **outside** the
    /// shard lock, so it may itself use the cache (for different keys).
    pub fn get_or_build(&self, key: &K, build: impl FnOnce() -> V) -> Outcome<V> {
        let shard = &self.shards[(key.fingerprint() % self.shards.len() as u64) as usize];
        loop {
            // Fast path + build-slot installation, under the shard lock.
            let build_slot = {
                let mut state = shard.state.lock().unwrap_or_else(PoisonError::into_inner);
                state.tick += 1;
                let tick = state.tick;
                match state.map.get_mut(key) {
                    Some(Slot::Ready {
                        value, last_used, ..
                    }) => {
                        *last_used = tick;
                        let value = Arc::clone(value);
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        return Outcome {
                            value,
                            kind: OutcomeKind::Hit,
                            admitted: true,
                            evicted: 0,
                        };
                    }
                    Some(Slot::Building(b)) => Some(Arc::clone(b)),
                    None => {
                        let b = Arc::new(Build {
                            state: Mutex::new(BuildState::Pending),
                            cv: Condvar::new(),
                        });
                        state
                            .map
                            .insert(key.clone(), Slot::Building(Arc::clone(&b)));
                        self.misses.fetch_add(1, Ordering::Relaxed);
                        drop(state);
                        return self.run_build(shard, key, b, build);
                    }
                }
            };
            // Coalesced path: wait for the in-flight build, outside the
            // shard lock.
            if let Some(b) = build_slot {
                let mut st = b.state.lock().unwrap_or_else(PoisonError::into_inner);
                loop {
                    match &*st {
                        BuildState::Pending => {
                            st = b.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
                        }
                        BuildState::Done(value, admitted) => {
                            self.coalesced.fetch_add(1, Ordering::Relaxed);
                            return Outcome {
                                value: Arc::clone(value),
                                kind: OutcomeKind::Coalesced,
                                admitted: *admitted,
                                evicted: 0,
                            };
                        }
                        BuildState::Failed => break, // retry from the top
                    }
                }
            }
        }
    }

    /// Runs the builder for a freshly installed `Building` slot, then
    /// admits (possibly evicting) or rejects the result and wakes waiters.
    fn run_build(
        &self,
        shard: &Shard<K, V>,
        key: &K,
        build_slot: Arc<Build<V>>,
        build: impl FnOnce() -> V,
    ) -> Outcome<V> {
        // If the builder panics, this guard flips the slot to Failed and
        // removes the placeholder so waiters retry instead of hanging.
        struct Abort<'a, K: Ord + Clone + Fingerprint, V: CacheWeight> {
            shard: &'a Shard<K, V>,
            key: &'a K,
            build: &'a Arc<Build<V>>,
            armed: bool,
        }
        impl<K: Ord + Clone + Fingerprint, V: CacheWeight> Drop for Abort<'_, K, V> {
            fn drop(&mut self) {
                if !self.armed {
                    return;
                }
                let mut state = self
                    .shard
                    .state
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner);
                if matches!(state.map.get(self.key), Some(Slot::Building(_))) {
                    state.map.remove(self.key);
                }
                drop(state);
                *self
                    .build
                    .state
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner) = BuildState::Failed;
                self.build.cv.notify_all();
            }
        }
        let mut abort = Abort {
            shard,
            key,
            build: &build_slot,
            armed: true,
        };

        let value = Arc::new(build());
        abort.armed = false;

        let bytes = value.cache_bytes();
        let admitted = bytes <= self.per_shard_budget;
        let mut evicted = 0usize;
        {
            let mut state = shard.state.lock().unwrap_or_else(PoisonError::into_inner);
            if admitted {
                // Evict LRU Ready entries until the newcomer fits. Building
                // placeholders are never evicted (they hold waiters).
                while state.bytes + bytes > self.per_shard_budget {
                    let victim = state
                        .map
                        .iter()
                        .filter_map(|(k, slot)| match slot {
                            Slot::Ready { last_used, .. } => Some((*last_used, k.clone())),
                            Slot::Building(_) => None,
                        })
                        .min()
                        .map(|(_, k)| k);
                    let Some(victim) = victim else { break };
                    if let Some(Slot::Ready {
                        bytes: freed_bytes, ..
                    }) = state.map.remove(&victim)
                    {
                        state.bytes -= freed_bytes;
                        evicted += 1;
                        self.resident_bytes
                            .fetch_sub(freed_bytes, Ordering::Relaxed);
                        self.resident_entries.fetch_sub(1, Ordering::Relaxed);
                    }
                }
                state.tick += 1;
                let tick = state.tick;
                state.map.insert(
                    key.clone(),
                    Slot::Ready {
                        value: Arc::clone(&value),
                        bytes,
                        last_used: tick,
                    },
                );
                state.bytes += bytes;
                self.resident_bytes.fetch_add(bytes, Ordering::Relaxed);
                self.resident_entries.fetch_add(1, Ordering::Relaxed);
                self.evictions.fetch_add(evicted as u64, Ordering::Relaxed);
            } else {
                // Oversized: drop the placeholder, count the rejection.
                state.map.remove(key);
                self.rejected.fetch_add(1, Ordering::Relaxed);
            }
        }

        *build_slot
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner) =
            BuildState::Done(Arc::clone(&value), admitted);
        build_slot.cv.notify_all();

        Outcome {
            value,
            kind: OutcomeKind::Built,
            admitted,
            evicted,
        }
    }

    /// A point-in-time snapshot of the cache tallies.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            resident_bytes: self.resident_bytes.load(Ordering::Relaxed),
            resident_entries: self.resident_entries.load(Ordering::Relaxed),
        }
    }

    /// Drops every resident entry (in-flight builds are unaffected: their
    /// waiters still receive the built value; it just isn't re-admitted).
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut state = shard.state.lock().unwrap_or_else(PoisonError::into_inner);
            let mut freed_bytes = 0usize;
            let mut freed_entries = 0usize;
            state.map.retain(|_, slot| match slot {
                Slot::Ready { bytes, .. } => {
                    freed_bytes += *bytes;
                    freed_entries += 1;
                    false
                }
                Slot::Building(_) => true,
            });
            state.bytes -= freed_bytes;
            self.resident_bytes
                .fetch_sub(freed_bytes, Ordering::Relaxed);
            self.resident_entries
                .fetch_sub(freed_entries, Ordering::Relaxed);
        }
    }
}

/// A [`ShardedCache`] of interned [`SharedKernel`]s — the admission-
/// controlled sibling of [`crate::tables::KernelCache`] for long-running
/// services.
pub type ShardedKernelCache = ShardedCache<KernelKey, SharedKernel>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
    struct Key(u64);
    impl Fingerprint for Key {
        fn fingerprint(&self) -> u64 {
            fnv64(&self.0.to_le_bytes())
        }
    }

    #[derive(Debug, PartialEq)]
    struct Val {
        id: u64,
        weight: usize,
    }
    impl CacheWeight for Val {
        fn cache_bytes(&self) -> usize {
            self.weight
        }
    }

    fn build_counter() -> Arc<AtomicU64> {
        Arc::new(AtomicU64::new(0))
    }

    #[test]
    fn hit_after_miss_and_stats() {
        let cache: ShardedCache<Key, Val> = ShardedCache::new(4, 4096);
        let builds = build_counter();
        for round in 0..3 {
            let b = Arc::clone(&builds);
            let out = cache.get_or_build(&Key(7), move || {
                b.fetch_add(1, Ordering::Relaxed);
                Val { id: 7, weight: 100 }
            });
            assert_eq!(out.value.id, 7);
            assert!(out.admitted);
            assert_eq!(
                out.kind,
                if round == 0 {
                    OutcomeKind::Built
                } else {
                    OutcomeKind::Hit
                }
            );
        }
        assert_eq!(builds.load(Ordering::Relaxed), 1);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (2, 1));
        assert_eq!(stats.resident_bytes, 100);
        assert_eq!(stats.resident_entries, 1);
    }

    #[test]
    fn lru_eviction_respects_byte_budget_and_recency() {
        // One shard, budget 250 → at most two 100-byte entries.
        let cache: ShardedCache<Key, Val> = ShardedCache::new(1, 250);
        let mk = |id: u64| Val { id, weight: 100 };
        cache.get_or_build(&Key(1), || mk(1));
        cache.get_or_build(&Key(2), || mk(2));
        // Touch 1 so 2 becomes the LRU victim.
        assert_eq!(cache.get_or_build(&Key(1), || mk(1)).kind, OutcomeKind::Hit);
        let out = cache.get_or_build(&Key(3), || mk(3));
        assert_eq!(out.kind, OutcomeKind::Built);
        assert_eq!(out.evicted, 1);
        // 2 was evicted; 1 survived.
        assert_eq!(cache.get_or_build(&Key(1), || mk(1)).kind, OutcomeKind::Hit);
        assert_eq!(
            cache.get_or_build(&Key(2), || mk(2)).kind,
            OutcomeKind::Built
        );
        let stats = cache.stats();
        assert!(stats.evictions >= 2, "{stats:?}");
        assert!(stats.resident_bytes <= 250, "{stats:?}");
    }

    #[test]
    fn oversized_entry_is_returned_but_not_admitted() {
        let cache: ShardedCache<Key, Val> = ShardedCache::new(2, 100); // 50/shard
        let out = cache.get_or_build(&Key(9), || Val { id: 9, weight: 999 });
        assert_eq!(out.kind, OutcomeKind::Built);
        assert!(!out.admitted);
        assert_eq!(out.value.id, 9);
        let stats = cache.stats();
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.resident_entries, 0);
        // The next lookup is a fresh miss, not a hit.
        let out = cache.get_or_build(&Key(9), || Val { id: 9, weight: 999 });
        assert_eq!(out.kind, OutcomeKind::Built);
    }

    #[test]
    fn cold_miss_storm_coalesces_to_one_build() {
        // The ISSUE's acceptance gate: 64 concurrent identical cold
        // queries compute the value exactly once, coalescing ≥ 63.
        let cache: Arc<ShardedCache<Key, Val>> = Arc::new(ShardedCache::new(8, 1 << 20));
        let builds = build_counter();
        let barrier = Arc::new(std::sync::Barrier::new(64));
        let handles: Vec<_> = (0..64)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let builds = Arc::clone(&builds);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    let out = cache.get_or_build(&Key(42), || {
                        builds.fetch_add(1, Ordering::Relaxed);
                        // Hold the build open long enough that the other
                        // 63 threads arrive while it is in flight.
                        std::thread::sleep(std::time::Duration::from_millis(50));
                        Val { id: 42, weight: 10 }
                    });
                    assert_eq!(out.value.id, 42);
                    out.kind
                })
            })
            .collect();
        let kinds: Vec<OutcomeKind> = handles
            .into_iter()
            .map(|h| h.join().expect("storm thread"))
            .collect();
        assert_eq!(builds.load(Ordering::Relaxed), 1, "kernel built once");
        let coalesced = kinds
            .iter()
            .filter(|k| **k == OutcomeKind::Coalesced)
            .count();
        let built = kinds.iter().filter(|k| **k == OutcomeKind::Built).count();
        assert_eq!(built, 1);
        assert!(
            coalesced >= 63 - built,
            "coalesced={coalesced} kinds={kinds:?}"
        );
        assert!(cache.stats().coalesced >= 63, "{:?}", cache.stats());
    }

    #[test]
    fn failed_build_unblocks_waiters_for_retry() {
        let cache: Arc<ShardedCache<Key, Val>> = Arc::new(ShardedCache::new(1, 1 << 20));
        let c1 = Arc::clone(&cache);
        let panicker = std::thread::spawn(move || {
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                c1.get_or_build(&Key(5), || {
                    std::thread::sleep(std::time::Duration::from_millis(50));
                    panic!("builder died");
                })
            }));
            assert!(result.is_err());
        });
        // Give the panicker time to install the Building slot.
        std::thread::sleep(std::time::Duration::from_millis(10));
        let out = cache.get_or_build(&Key(5), || Val { id: 5, weight: 1 });
        assert_eq!(out.value.id, 5);
        panicker.join().expect("panicker joined");
    }

    #[test]
    fn clear_empties_resident_entries() {
        let cache: ShardedCache<Key, Val> = ShardedCache::new(4, 1 << 20);
        for i in 0..10 {
            cache.get_or_build(&Key(i), || Val { id: i, weight: 64 });
        }
        assert_eq!(cache.stats().resident_entries, 10);
        cache.clear();
        let stats = cache.stats();
        assert_eq!(stats.resident_entries, 0);
        assert_eq!(stats.resident_bytes, 0);
    }

    #[test]
    fn kernel_key_fingerprint_is_deterministic_and_spreads() {
        use crate::ring_model::RingModelConfig;
        let key = KernelKey::of(&RingModelConfig::paper(20.0, 0.5));
        assert_eq!(key.fingerprint(), key.fingerprint());
        // Different quad resolution lands (almost surely) elsewhere.
        let mut other_cfg = RingModelConfig::paper(20.0, 0.5);
        other_cfg.quad_points += 32;
        let other = KernelKey::of(&other_cfg);
        assert_ne!(key.fingerprint(), other.fingerprint());
    }
}
