//! The slot-contention success probability `μ(K, s)` (Eq. 2 of the paper).
//!
//! `μ(K, s)` is the probability that, when `K` identical items are dropped
//! uniformly at random into `s` identical buckets, at least one bucket holds
//! exactly one item. In protocol terms: `K` informed neighbors each pick one
//! of `s` jitter slots; the tagged receiver gets at least one collision-free
//! packet iff some slot carries exactly one transmission.
//!
//! Two independent implementations are provided:
//!
//! 1. [`MuTable`] — the paper's recursion (Eq. 2), conditioning on the
//!    number of items in the first bucket, evaluated by dynamic programming.
//! 2. [`mu_closed_form`] — an inclusion–exclusion formula over the set of
//!    "good" buckets, derived independently:
//!    `μ(K,s) = Σ_{t=1}^{min(s,K)} (−1)^{t+1} C(s,t) (K)_t s^{−t} ((s−t)/s)^{K−t}`.
//!
//! They agree to ~1e-12 (see tests), which validates both; the closed form
//! is used in hot paths because it is O(s) per evaluation with no state.
//!
//! The paper plugs the *expected* contender count `g(x)·p` — a real number —
//! into the integer-argument `μ`. [`MuEvaluator`] supports the paper's
//! implicit choice (linear interpolation between integer lattice points) and
//! a principled alternative (Poisson mixture over the contender count),
//! selectable via [`MuMode`].

use crate::combinatorics::{falling_factorial, poisson_pmf, BinomialPmf};
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};

/// Dynamic-programming table for the paper's recursion (Eq. 2).
///
/// `μ(K, 1) = [K = 1]`; for `s > 1`, condition on the count `i` in the
/// first bucket (binomial with `q = 1/s`):
///
/// * `i = 1` → success outright,
/// * `i = 0` → success iff the remaining `K` items succeed in `s−1` buckets,
/// * `i ≥ 2` → success iff the remaining `K−i` items succeed in `s−1` buckets.
///
/// Thread-safe: the table grows lazily behind an `RwLock`, so a single
/// instance can serve a parallel parameter sweep.
#[derive(Debug)]
pub struct MuTable {
    s: u32,
    /// `tables[s'-1][k] = μ(k, s')` for `s' = 1..=s`, `k = 0..len`.
    tables: RwLock<Vec<Vec<f64>>>,
}

impl MuTable {
    /// Creates a table for `s ≥ 1` slots.
    pub fn new(s: u32) -> Self {
        assert!(s >= 1, "need at least one slot");
        MuTable {
            s,
            tables: RwLock::new(vec![Vec::new(); s as usize]),
        }
    }

    /// Approximate heap footprint of the DP rows in bytes.
    pub fn bytes(&self) -> usize {
        self.tables
            .read()
            .iter()
            .map(|row| row.capacity() * std::mem::size_of::<f64>())
            .sum()
    }

    /// The number of slots this table was built for.
    pub fn slots(&self) -> u32 {
        self.s
    }

    /// `μ(K, s)` by the paper's recursion.
    pub fn mu(&self, k: u64) -> f64 {
        if k == 0 {
            return 0.0;
        }
        if k == 1 {
            return 1.0;
        }
        {
            let tables = self.tables.read();
            let top = &tables[self.s as usize - 1];
            if (k as usize) < top.len() {
                return top[k as usize];
            }
        }
        self.extend_to(k);
        self.tables.read()[self.s as usize - 1][k as usize]
    }

    /// Pre-grows the DP tables to cover `k`, so that subsequent [`MuTable::mu`]
    /// queries up to `k` take only the shared-lock fast path. Call this once
    /// before fanning a table out to sweep workers; otherwise the first
    /// worker to query a large `K` rebuilds the table under the write lock
    /// while every other worker blocks on it.
    pub fn ensure(&self, k: u64) {
        let covered = {
            let tables = self.tables.read();
            (k as usize) < tables[self.s as usize - 1].len()
        };
        if !covered {
            self.extend_to(k);
        }
    }

    /// Rebuilds the DP tables up to at least index `k` (geometric growth).
    fn extend_to(&self, k: u64) {
        let mut tables = self.tables.write();
        let current = tables[self.s as usize - 1].len();
        if (k as usize) < current {
            return; // another thread extended while we waited
        }
        let target = ((k as usize) + 1).next_power_of_two().max(64);
        // s' = 1: μ(k, 1) = [k == 1]
        let mut prev: Vec<f64> = (0..target)
            .map(|i| if i == 1 { 1.0 } else { 0.0 })
            .collect();
        tables[0] = prev.clone();
        for sp in 2..=self.s {
            let q = 1.0 / f64::from(sp);
            let mut cur = vec![0.0f64; target];
            cur[1] = 1.0;
            for kk in 2..target {
                let mut acc = 0.0;
                for (i, pi) in BinomialPmf::new(kk as u64, q) {
                    // nss-lint: allow(float-safety) — skip terms whose pmf underflowed to literal 0.0; they contribute nothing
                    if pi == 0.0 {
                        continue;
                    }
                    acc += match i {
                        1 => pi,
                        0 => pi * prev[kk],
                        _ => {
                            let rem = kk - i as usize;
                            if rem == 0 {
                                0.0
                            } else {
                                pi * prev[rem]
                            }
                        }
                    };
                }
                cur[kk] = acc;
            }
            tables[sp as usize - 1] = cur.clone();
            prev = cur;
        }
    }
}

/// `μ(K, s)` by inclusion–exclusion over the "exactly-one-item" buckets.
///
/// With `E_b` = "bucket `b` holds exactly one item",
/// `P(∩_{b∈T} E_b) = (K)_t · s^{−t} · ((s−t)/s)^{K−t}` for `|T| = t`, so
/// `μ = Σ_t (−1)^{t+1} C(s,t) (K)_t s^{−t} ((s−t)/s)^{K−t}`.
///
/// ```
/// use nss_analysis::mu::mu_closed_form;
///
/// assert_eq!(mu_closed_form(1, 3), 1.0);               // lone sender wins
/// assert!((mu_closed_form(2, 3) - 2.0 / 3.0) < 1e-12); // 2 senders, 3 slots
/// assert!(mu_closed_form(50, 3) < 1e-6);               // congestion collapse
/// ```
pub fn mu_closed_form(k: u64, s: u32) -> f64 {
    assert!(s >= 1);
    if k == 0 {
        return 0.0;
    }
    let sf = f64::from(s);
    let tmax = (s as u64).min(k);
    let mut acc = 0.0f64;
    let mut binom_st = 1.0f64; // C(s, t), updated iteratively
    for t in 1..=tmax {
        binom_st *= (f64::from(s) - (t - 1) as f64) / t as f64;
        let base = (sf - t as f64) / sf;
        // 0^0 = 1 (t = s and K = t); 0^positive = 0.
        // nss-lint: allow(float-safety) — base = (s−t)/s is exactly 0.0 iff t = s; the 0^0 lattice case below needs the exact branch
        let pow = if base == 0.0 {
            if k == t {
                1.0
            } else {
                0.0
            }
        } else {
            base.powf((k - t) as f64)
        };
        let term = binom_st * falling_factorial(k, t) * sf.powi(-(t as i32)) * pow;
        if t % 2 == 1 {
            acc += term;
        } else {
            acc -= term;
        }
    }
    acc.clamp(0.0, 1.0)
}

/// How to evaluate `μ` at a *real-valued* expected contender count.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub enum MuMode {
    /// Linear interpolation between the integer lattice points — the
    /// paper's (implicit) choice; `μ(k) = k` for `k ∈ [0, 1]`.
    #[default]
    Interpolate,
    /// Poisson mixture: `E_{N ~ Poisson(k)}[μ(N, s)]`, treating the
    /// contender count as a Poisson random variable with the given mean —
    /// consistent with the spatial-Poisson view of the deployment.
    Poisson,
}

/// Evaluator of `μ(k, s)` for real `k ≥ 0` under a chosen [`MuMode`].
///
/// Cheap to construct; all evaluation is stateless (closed form), so the
/// evaluator is `Copy` and trivially shareable across threads.
#[derive(Debug, Clone, Copy)]
pub struct MuEvaluator {
    s: u32,
    mode: MuMode,
}

impl MuEvaluator {
    /// Creates an evaluator for `s` slots in the given mode.
    pub fn new(s: u32, mode: MuMode) -> Self {
        assert!(s >= 1, "need at least one slot");
        MuEvaluator { s, mode }
    }

    /// The slot count.
    pub fn slots(&self) -> u32 {
        self.s
    }

    /// The real-`k` evaluation mode.
    pub fn mode(&self) -> MuMode {
        self.mode
    }

    /// `μ(k, s)` for real `k ≥ 0` (negative inputs are clamped to 0).
    pub fn eval(&self, k: f64) -> f64 {
        let k = k.max(0.0);
        match self.mode {
            MuMode::Interpolate => {
                let lo = k.floor();
                let hi = k.ceil();
                let mu_lo = mu_closed_form(lo as u64, self.s);
                if lo == hi {
                    return mu_lo;
                }
                let mu_hi = mu_closed_form(hi as u64, self.s);
                mu_lo + (k - lo) * (mu_hi - mu_lo)
            }
            MuMode::Poisson => poisson_pmf(k, 1e-12)
                .into_iter()
                .map(|(n, p)| p * mu_closed_form(n, self.s))
                .sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force μ(K, s) by enumerating all s^K assignments.
    fn mu_brute(k: u32, s: u32) -> f64 {
        if k == 0 {
            return 0.0;
        }
        let total = (s as u64).pow(k);
        let mut good = 0u64;
        for code in 0..total {
            let mut counts = vec![0u32; s as usize];
            let mut c = code;
            for _ in 0..k {
                counts[(c % s as u64) as usize] += 1;
                c /= s as u64;
            }
            if counts.contains(&1) {
                good += 1;
            }
        }
        good as f64 / total as f64
    }

    #[test]
    fn recursion_matches_brute_force() {
        for s in 1..=4u32 {
            let table = MuTable::new(s);
            for k in 0..=9u64 {
                if (s as u64).pow(k as u32) > 300_000 {
                    continue;
                }
                let expect = mu_brute(k as u32, s);
                let got = table.mu(k);
                assert!(
                    (got - expect).abs() < 1e-12,
                    "μ({k},{s}): recursion {got} vs brute {expect}"
                );
            }
        }
    }

    #[test]
    fn closed_form_matches_recursion() {
        for s in 1..=6u32 {
            let table = MuTable::new(s);
            for k in 0..=200u64 {
                let a = table.mu(k);
                let b = mu_closed_form(k, s);
                assert!(
                    (a - b).abs() < 1e-10,
                    "μ({k},{s}): recursion {a} vs closed {b}"
                );
            }
        }
    }

    #[test]
    fn known_values() {
        // μ(1, s) = 1 for all s.
        for s in 1..=8 {
            assert_eq!(mu_closed_form(1, s), 1.0);
        }
        // μ(K, 1) = [K == 1].
        assert_eq!(mu_closed_form(2, 1), 0.0);
        assert_eq!(mu_closed_form(5, 1), 0.0);
        // μ(2, 2) = 1/2 (the (1,1) split of 4 equally likely outcomes ×2).
        assert!((mu_closed_form(2, 2) - 0.5).abs() < 1e-12);
        // μ(2, 3): P(two different buckets) = 2/3.
        assert!((mu_closed_form(2, 3) - 2.0 / 3.0).abs() < 1e-12);
        // μ(3, 3): 1 − P(no singleton) = 1 − P(all same)= 1 − 3/27 ... plus
        // (2,1,0)-type has a singleton; (3,0,0) doesn't. P = 1 − 3/27 − ...
        // brute force cross-check is authoritative:
        assert!((mu_closed_form(3, 3) - mu_brute(3, 3)).abs() < 1e-12);
    }

    #[test]
    fn mu_decays_for_large_k() {
        // With many contenders every slot collides: μ → 0.
        let table = MuTable::new(3);
        assert!(table.mu(50) < 1e-6);
        assert!(mu_closed_form(500, 3) < 1e-60);
        // μ is NOT monotone near the origin (μ(2,3)=2/3 < μ(3,3)=8/9), but
        // decays monotonically once contention dominates (K ≳ 2s).
        let mut prev = mu_closed_form(6, 3);
        for k in 7..60 {
            let v = mu_closed_form(k, 3);
            assert!(
                v <= prev + 1e-12,
                "μ({k},3) = {v} > μ({},3) = {prev}",
                k - 1
            );
            prev = v;
        }
        // The non-monotone bump near the origin, pinned exactly.
        assert!((mu_closed_form(2, 3) - 2.0 / 3.0).abs() < 1e-12);
        assert!((mu_closed_form(3, 3) - 8.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn more_slots_help() {
        for k in 2..40u64 {
            let a = mu_closed_form(k, 2);
            let b = mu_closed_form(k, 4);
            let c = mu_closed_form(k, 8);
            assert!(a <= b + 1e-12 && b <= c + 1e-12, "k={k}: {a} {b} {c}");
        }
    }

    #[test]
    fn table_extension_is_consistent() {
        // Query in increasing order, then verify against a fresh big table.
        let lazy = MuTable::new(3);
        let small: Vec<f64> = (0..10).map(|k| lazy.mu(k)).collect();
        let _ = lazy.mu(300); // force extension
        for (k, &v) in small.iter().enumerate() {
            assert_eq!(lazy.mu(k as u64), v, "value changed after extension");
        }
    }

    #[test]
    fn ensure_pregrows_without_changing_values() {
        let lazy = MuTable::new(3);
        let eager = MuTable::new(3);
        eager.ensure(250);
        for k in 0..=250u64 {
            assert_eq!(lazy.mu(k).to_bits(), eager.mu(k).to_bits(), "k = {k}");
        }
        // Idempotent, including for already-covered indices.
        eager.ensure(10);
        eager.ensure(250);
        assert_eq!(eager.mu(250).to_bits(), lazy.mu(250).to_bits());
    }

    #[test]
    fn evaluator_interpolation() {
        let ev = MuEvaluator::new(3, MuMode::Interpolate);
        // k in [0,1] is linear: μ(0)=0, μ(1)=1.
        assert!((ev.eval(0.25) - 0.25).abs() < 1e-12);
        assert_eq!(ev.eval(0.0), 0.0);
        assert_eq!(ev.eval(1.0), 1.0);
        assert_eq!(ev.eval(-3.0), 0.0);
        // Integer points equal the exact values.
        for k in 0..20u64 {
            assert!((ev.eval(k as f64) - mu_closed_form(k, 3)).abs() < 1e-12);
        }
        // Midpoint is the average of neighbors.
        let mid = ev.eval(4.5);
        let avg = 0.5 * (mu_closed_form(4, 3) + mu_closed_form(5, 3));
        assert!((mid - avg).abs() < 1e-12);
    }

    #[test]
    fn evaluator_poisson_mixture() {
        let ev = MuEvaluator::new(3, MuMode::Poisson);
        // λ = 0 → no contenders → 0.
        assert_eq!(ev.eval(0.0), 0.0);
        // For small λ, μ ≈ P(N=1) = λe^{−λ}, plus tiny N≥2 contributions.
        let v = ev.eval(0.01);
        assert!((v - 0.01 * (-0.01f64).exp()).abs() < 1e-4);
        // Mixture of values in [0,1] stays in [0,1].
        for lam in [0.1, 1.0, 3.0, 10.0, 80.0] {
            let v = ev.eval(lam);
            assert!((0.0..=1.0).contains(&v), "λ={lam}: {v}");
        }
        // Monte-Carlo cross-check at λ = 4.
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(8);
        let trials = 200_000;
        let mut succ = 0u32;
        for _ in 0..trials {
            // Sample N ~ Poisson(4) by Knuth.
            let l = (-4.0f64).exp();
            let mut n = 0u32;
            let mut p = 1.0;
            loop {
                p *= rng.random::<f64>();
                if p <= l {
                    break;
                }
                n += 1;
            }
            let mut slots = [0u32; 3];
            for _ in 0..n {
                slots[rng.random_range(0..3)] += 1;
            }
            if slots.contains(&1) {
                succ += 1;
            }
        }
        let mc = f64::from(succ) / f64::from(trials);
        let anal = ev.eval(4.0);
        assert!((mc - anal).abs() < 0.005, "MC {mc} vs analytic {anal}");
    }

    #[test]
    fn modes_agree_at_low_density_disagree_at_peak() {
        // Both modes agree at k=0 and for huge k (both → 0); they differ
        // most around k ≈ 1-3 where μ is near its peak.
        let li = MuEvaluator::new(3, MuMode::Interpolate);
        let po = MuEvaluator::new(3, MuMode::Poisson);
        assert!((li.eval(0.0) - po.eval(0.0)).abs() < 1e-12);
        assert!(li.eval(100.0) < 1e-8 && po.eval(100.0) < 1e-4);
        let d = (li.eval(1.0) - po.eval(1.0)).abs();
        assert!(d > 0.05, "expected visible modelling difference, got {d}");
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_slots_rejected() {
        let _ = MuEvaluator::new(0, MuMode::Interpolate);
    }
}
