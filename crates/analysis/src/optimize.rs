//! Broadcast-probability optimization against the §4.1 performance metrics.
//!
//! The paper treats the broadcast probability `p` as the tunable algorithm
//! parameter and selects it by sweeping a grid (0.01..1.00 in the analysis)
//! and reading off the argmax/argmin for the metric of interest. This module
//! implements that sweep plus a golden-section refinement for callers that
//! want more resolution than the grid.

use crate::ring_model::{RingModel, RingModelConfig};
use crate::tables::KernelCache;
use nss_model::metrics::PhaseSeries;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// One of the four §4.1 optimization objectives.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Objective {
    /// Metric 1: maximize reachability within a latency budget (phases).
    MaxReachAtLatency {
        /// Latency budget in (possibly fractional) phases.
        phases: f64,
    },
    /// Metric 3: minimize latency (phases) to a reachability target.
    MinLatencyForReach {
        /// Reachability target in (0, 1].
        target: f64,
    },
    /// Metric 4: minimize broadcasts to a reachability target.
    MinBroadcastsForReach {
        /// Reachability target in (0, 1].
        target: f64,
    },
    /// Metric 5: maximize reachability within a broadcast budget.
    MaxReachUnderBudget {
        /// Broadcast budget (count).
        budget: f64,
    },
}

impl Objective {
    /// True for maximization objectives.
    pub fn is_max(&self) -> bool {
        matches!(
            self,
            Objective::MaxReachAtLatency { .. } | Objective::MaxReachUnderBudget { .. }
        )
    }

    /// Evaluates the objective on one execution summary. `None` means the
    /// execution cannot satisfy the constraint (e.g. never reaches the
    /// target), which the paper renders as a gap in the curve.
    pub fn evaluate(&self, series: &PhaseSeries) -> Option<f64> {
        match *self {
            Objective::MaxReachAtLatency { phases } => Some(series.reachability_at_latency(phases)),
            Objective::MinLatencyForReach { target } => series.latency_to_reach(target),
            Objective::MinBroadcastsForReach { target } => series.broadcasts_to_reach(target),
            Objective::MaxReachUnderBudget { budget } => {
                Some(series.reachability_under_budget(budget))
            }
        }
    }

    /// True if candidate value `a` is better than incumbent `b`.
    fn better(&self, a: f64, b: f64) -> bool {
        if self.is_max() {
            a > b
        } else {
            a < b
        }
    }
}

/// An optimal probability with the metric value it achieves.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Optimum {
    /// The optimal broadcast probability.
    pub prob: f64,
    /// The metric value at that probability.
    pub value: f64,
}

/// A sweep of the analytical model over a probability grid at fixed density.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProbabilitySweep {
    /// Base configuration; its `prob` field is overridden per grid point.
    pub base: RingModelConfig,
    /// The probability grid.
    pub probs: Vec<f64>,
    /// Phase series for each grid point, aligned with `probs`.
    pub series: Vec<PhaseSeries>,
}

impl ProbabilitySweep {
    /// Runs the ring model at every probability in `probs`. All grid points
    /// share one interned kernel (see [`KernelCache`]).
    pub fn run(base: RingModelConfig, probs: &[f64]) -> Self {
        let kernel = KernelCache::global().get(&base);
        let series = probs
            .iter()
            .map(|&p| {
                let mut cfg = base;
                cfg.prob = p;
                RingModel::with_kernel(cfg, Arc::clone(&kernel))
                    .run()
                    .phase_series()
            })
            .collect();
        ProbabilitySweep {
            base,
            probs: probs.to_vec(),
            series,
        }
    }

    /// The paper's analysis grid: 0.01..=1.00 step 0.01.
    pub fn paper_grid() -> Vec<f64> {
        (1..=100).map(|i| f64::from(i) / 100.0).collect()
    }

    /// The paper's simulation grid: 0.05..=1.00 step 0.05.
    pub fn sim_grid() -> Vec<f64> {
        (1..=20).map(|i| f64::from(i) / 20.0).collect()
    }

    /// Objective value at every grid point (`None` = infeasible).
    pub fn evaluate(&self, obj: Objective) -> Vec<(f64, Option<f64>)> {
        self.probs
            .iter()
            .zip(&self.series)
            .map(|(&p, s)| (p, obj.evaluate(s)))
            .collect()
    }

    /// The best grid point for the objective, if any point is feasible.
    pub fn optimum(&self, obj: Objective) -> Option<Optimum> {
        let mut best: Option<Optimum> = None;
        for (p, v) in self.evaluate(obj) {
            let Some(v) = v else { continue };
            match best {
                Some(b) if !obj.better(v, b.value) => {}
                _ => best = Some(Optimum { prob: p, value: v }),
            }
        }
        best
    }
}

/// Golden-section refinement of the optimal probability inside `[lo, hi]`,
/// assuming the objective is unimodal in `p` there (the bell shape the
/// paper observes). Infeasible evaluations are treated as worst-possible.
///
/// Returns the refined optimum after `iters` contractions (each costs two
/// ring-model runs; 20 iterations shrink the interval by ~1e-4).
pub fn refine_golden(
    base: RingModelConfig,
    obj: Objective,
    lo: f64,
    hi: f64,
    iters: u32,
) -> Optimum {
    assert!((0.0..=1.0).contains(&lo) && lo < hi && hi <= 1.0);
    nss_obs::counter!("analysis.golden.refinements").inc();
    let kernel = KernelCache::global().get(&base);
    let eval = |p: f64| -> f64 {
        nss_obs::counter!("analysis.golden.evals").inc();
        let mut cfg = base;
        cfg.prob = p;
        let s = RingModel::with_kernel(cfg, Arc::clone(&kernel))
            .run()
            .phase_series();
        match obj.evaluate(&s) {
            Some(v) => {
                if obj.is_max() {
                    v
                } else {
                    -v // maximize the negation
                }
            }
            None => f64::NEG_INFINITY,
        }
    };
    const INV_PHI: f64 = 0.618_033_988_749_894_9;
    let (mut a, mut b) = (lo, hi);
    let mut c = b - INV_PHI * (b - a);
    let mut d = a + INV_PHI * (b - a);
    let mut fc = eval(c);
    let mut fd = eval(d);
    for _ in 0..iters {
        if fc >= fd {
            b = d;
            d = c;
            fd = fc;
            c = b - INV_PHI * (b - a);
            fc = eval(c);
        } else {
            a = c;
            c = d;
            fc = fd;
            d = a + INV_PHI * (b - a);
            fd = eval(d);
        }
    }
    let (p, f) = if fc >= fd { (c, fc) } else { (d, fd) };
    Optimum {
        prob: p,
        value: if obj.is_max() { f } else { -f },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn coarse_sweep(rho: f64) -> ProbabilitySweep {
        let mut base = RingModelConfig::paper(rho, 0.0);
        base.quad_points = 32; // keep tests fast
        let probs: Vec<f64> = (1..=20).map(|i| f64::from(i) / 20.0).collect();
        ProbabilitySweep::run(base, &probs)
    }

    #[test]
    fn grids_match_paper() {
        let g = ProbabilitySweep::paper_grid();
        assert_eq!(g.len(), 100);
        assert!((g[0] - 0.01).abs() < 1e-12);
        assert!((g[99] - 1.0).abs() < 1e-12);
        let g = ProbabilitySweep::sim_grid();
        assert_eq!(g.len(), 20);
        assert!((g[0] - 0.05).abs() < 1e-12);
    }

    #[test]
    fn objective_duality_latency_vs_reach() {
        // The optimal p maximizing reachability in 5 phases should also be
        // (near-)optimal for minimizing latency to that reachability — the
        // §4.1 duality, visible as identical curves in Figs. 4b and 5b.
        let sweep = coarse_sweep(60.0);
        let opt_reach = sweep
            .optimum(Objective::MaxReachAtLatency { phases: 5.0 })
            .unwrap();
        let opt_lat = sweep
            .optimum(Objective::MinLatencyForReach {
                target: opt_reach.value * 0.999,
            })
            .unwrap();
        assert!(
            (opt_reach.prob - opt_lat.prob).abs() <= 0.101,
            "dual optima far apart: {} vs {}",
            opt_reach.prob,
            opt_lat.prob
        );
    }

    #[test]
    fn optimal_prob_decreases_with_density() {
        // The paper's headline: p* for metric 1 drops rapidly with rho.
        let obj = Objective::MaxReachAtLatency { phases: 5.0 };
        let p20 = coarse_sweep(20.0).optimum(obj).unwrap().prob;
        let p140 = coarse_sweep(140.0).optimum(obj).unwrap().prob;
        assert!(
            p140 < p20,
            "optimal p should fall with density: rho=20 → {p20}, rho=140 → {p140}"
        );
    }

    #[test]
    fn energy_optimal_prob_is_small() {
        // The paper: p* for the energy metric stays in [0, ~0.1-0.2].
        let obj = Objective::MinBroadcastsForReach { target: 0.6 };
        for rho in [40.0, 100.0] {
            let opt = coarse_sweep(rho).optimum(obj).unwrap();
            assert!(
                opt.prob <= 0.3,
                "rho={rho}: energy-optimal p = {} too large",
                opt.prob
            );
        }
    }

    #[test]
    fn infeasible_targets_yield_none() {
        let sweep = coarse_sweep(20.0);
        assert!(sweep
            .optimum(Objective::MinLatencyForReach { target: 1.01 })
            .is_none());
        // Some points infeasible, others not → evaluate reflects gaps.
        let vals = sweep.evaluate(Objective::MinLatencyForReach { target: 0.7 });
        assert!(vals.iter().any(|(_, v)| v.is_some()));
    }

    #[test]
    fn max_objectives_always_feasible() {
        let sweep = coarse_sweep(40.0);
        for (_, v) in sweep.evaluate(Objective::MaxReachAtLatency { phases: 5.0 }) {
            assert!(v.is_some());
        }
        for (_, v) in sweep.evaluate(Objective::MaxReachUnderBudget { budget: 35.0 }) {
            assert!(v.is_some());
        }
    }

    #[test]
    fn golden_refinement_beats_or_ties_grid() {
        let mut base = RingModelConfig::paper(60.0, 0.0);
        base.quad_points = 32;
        let obj = Objective::MaxReachAtLatency { phases: 5.0 };
        let sweep = coarse_sweep(60.0);
        let grid_opt = sweep.optimum(obj).unwrap();
        let refined = refine_golden(base, obj, 0.01, 1.0, 16);
        assert!(
            refined.value >= grid_opt.value - 1e-6,
            "refined {} worse than grid {}",
            refined.value,
            grid_opt.value
        );
    }

    #[test]
    fn better_respects_direction() {
        let max_obj = Objective::MaxReachAtLatency { phases: 5.0 };
        let min_obj = Objective::MinLatencyForReach { target: 0.5 };
        assert!(max_obj.better(0.9, 0.5));
        assert!(!max_obj.better(0.4, 0.5));
        assert!(min_obj.better(3.0, 5.0));
        assert!(!min_obj.better(7.0, 5.0));
    }
}
