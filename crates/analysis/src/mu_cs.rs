//! Carrier-sense contention probability `μ'(K1, K2, s)` (Eq. A.1).
//!
//! Appendix A of the paper extends the collision model with a carrier-sense
//! range: a reception at `v` succeeds only if its slot carries exactly one
//! transmission from `v`'s *transmission* range (type-A items, `K1` of them)
//! and **zero** transmissions from the carrier-sense annulus (type-B items,
//! `K2` of them). `μ'(K1, K2, s)` is the probability that at least one of
//! the `s` slots is "good" in this sense.
//!
//! As with [`crate::mu`], we implement the paper's recursion (for
//! validation) and an independently derived inclusion–exclusion closed form
//! used in hot paths:
//!
//! `μ'(K1,K2,s) = Σ_{t=1}^{min(s,K1)} (−1)^{t+1} C(s,t) (K1)_t s^{−t}
//!               ((s−t)/s)^{K1−t+K2}`
//!
//! (type-B items must avoid all `t` tagged slots, contributing the extra
//! `((s−t)/s)^{K2}` factor; setting `K2 = 0` recovers `μ`).
//!
//! For Poisson-distributed contender counts the formula collapses further
//! via the factorial-moment identity `E[(N)_t z^{N−t}] = λ^t e^{λ(z−1)}`:
//!
//! `μ'_Poisson(λ1,λ2,s) = Σ_t (−1)^{t+1} C(s,t) (λ1/s)^t
//!                        e^{−(λ1+λ2)·t/s}`.

use crate::combinatorics::{falling_factorial, BinomialPmf};
use crate::mu::MuMode;
use std::collections::HashMap;

/// `μ'(K1, K2, s)` by the paper's recursion (Eq. A.1), memoized.
///
/// Exponential-state DP intended for validation at small arguments; use
/// [`mu_cs_closed_form`] in production paths.
#[derive(Debug, Default)]
pub struct MuCsTable {
    memo: HashMap<(u64, u64, u32), f64>,
}

impl MuCsTable {
    /// Creates an empty memo table.
    pub fn new() -> Self {
        Self::default()
    }

    /// `μ'(K1, K2, s)` by recursion on the first bucket's contents.
    pub fn mu_cs(&mut self, k1: u64, k2: u64, s: u32) -> f64 {
        assert!(s >= 1);
        if k1 == 0 {
            return 0.0;
        }
        if s == 1 {
            return if k1 == 1 && k2 == 0 { 1.0 } else { 0.0 };
        }
        if k1 == 1 && k2 == 0 {
            return 1.0;
        }
        if let Some(&v) = self.memo.get(&(k1, k2, s)) {
            return v;
        }
        let q = 1.0 / f64::from(s);
        // Joint distribution of (i type-A, j type-B) in the first bucket:
        // independent binomials.
        let pa: Vec<(u64, f64)> = BinomialPmf::new(k1, q).collect();
        let pb: Vec<(u64, f64)> = BinomialPmf::new(k2, q).collect();
        let mut acc = 0.0;
        for &(i, pi) in &pa {
            // nss-lint: allow(float-safety) — skip terms whose pmf underflowed to literal 0.0
            if pi == 0.0 {
                continue;
            }
            for &(j, pj) in &pb {
                let p = pi * pj;
                // nss-lint: allow(float-safety) — exact zero product of underflowed pmfs contributes nothing
                if p == 0.0 {
                    continue;
                }
                if i == 1 && j == 0 {
                    acc += p;
                } else {
                    let r1 = k1 - i;
                    if r1 == 0 {
                        continue; // no type-A left → failure
                    }
                    acc += p * self.mu_cs(r1, k2 - j, s - 1);
                }
            }
        }
        self.memo.insert((k1, k2, s), acc);
        acc
    }
}

/// `μ'(K1, K2, s)` by inclusion–exclusion (module docs for the derivation).
pub fn mu_cs_closed_form(k1: u64, k2: u64, s: u32) -> f64 {
    assert!(s >= 1);
    if k1 == 0 {
        return 0.0;
    }
    let sf = f64::from(s);
    let tmax = (s as u64).min(k1);
    let mut acc = 0.0f64;
    let mut binom_st = 1.0f64;
    for t in 1..=tmax {
        binom_st *= (sf - (t - 1) as f64) / t as f64;
        let base = (sf - t as f64) / sf;
        let expo = (k1 - t + k2) as f64;
        // nss-lint: allow(float-safety) — base is exactly 0.0 iff t = s; an exact 0^0 lattice branch
        let pow = if base == 0.0 {
            // nss-lint: allow(float-safety) — expo is an integer-valued cast of k1 − t + k2, so exact zero is the K = t case
            if expo == 0.0 {
                1.0
            } else {
                0.0
            }
        } else {
            base.powf(expo)
        };
        let term = binom_st * falling_factorial(k1, t) * sf.powi(-(t as i32)) * pow;
        if t % 2 == 1 {
            acc += term;
        } else {
            acc -= term;
        }
    }
    acc.clamp(0.0, 1.0)
}

/// Analytic Poisson-mixture form: contender counts `N1 ~ Poisson(λ1)`,
/// `N2 ~ Poisson(λ2)` independent.
pub fn mu_cs_poisson(lambda1: f64, lambda2: f64, s: u32) -> f64 {
    assert!(s >= 1);
    let l1 = lambda1.max(0.0);
    let l2 = lambda2.max(0.0);
    // nss-lint: allow(float-safety) — exact zero after `.max(0.0)` clamping: no senders at all
    if l1 == 0.0 {
        return 0.0;
    }
    let sf = f64::from(s);
    let mut acc = 0.0f64;
    let mut binom_st = 1.0f64;
    for t in 1..=s as u64 {
        binom_st *= (sf - (t - 1) as f64) / t as f64;
        let term = binom_st * (l1 / sf).powf(t as f64) * (-(l1 + l2) * t as f64 / sf).exp();
        if t % 2 == 1 {
            acc += term;
        } else {
            acc -= term;
        }
    }
    acc.clamp(0.0, 1.0)
}

/// Evaluator of `μ'` at real-valued expected contender counts.
#[derive(Debug, Clone, Copy)]
pub struct MuCsEvaluator {
    s: u32,
    mode: MuMode,
}

impl MuCsEvaluator {
    /// Creates an evaluator for `s` slots in the given mode.
    pub fn new(s: u32, mode: MuMode) -> Self {
        assert!(s >= 1, "need at least one slot");
        MuCsEvaluator { s, mode }
    }

    /// The slot count.
    pub fn slots(&self) -> u32 {
        self.s
    }

    /// The real-`k` evaluation mode.
    pub fn mode(&self) -> MuMode {
        self.mode
    }

    /// `μ'(k1, k2, s)` for real `k1, k2 ≥ 0`.
    ///
    /// In [`MuMode::Interpolate`] this is bilinear interpolation on the
    /// integer lattice (reducing to the paper's 1-D interpolation when
    /// either argument is integral); in [`MuMode::Poisson`] it is the exact
    /// analytic mixture [`mu_cs_poisson`].
    pub fn eval(&self, k1: f64, k2: f64) -> f64 {
        let k1 = k1.max(0.0);
        let k2 = k2.max(0.0);
        match self.mode {
            MuMode::Poisson => mu_cs_poisson(k1, k2, self.s),
            MuMode::Interpolate => {
                let (a0, a1, fa) = lattice(k1);
                let (b0, b1, fb) = lattice(k2);
                let f00 = mu_cs_closed_form(a0, b0, self.s);
                let f10 = mu_cs_closed_form(a1, b0, self.s);
                let f01 = mu_cs_closed_form(a0, b1, self.s);
                let f11 = mu_cs_closed_form(a1, b1, self.s);
                let fx0 = f00 + fa * (f10 - f00);
                let fx1 = f01 + fa * (f11 - f01);
                fx0 + fb * (fx1 - fx0)
            }
        }
    }
}

#[inline]
fn lattice(x: f64) -> (u64, u64, f64) {
    let lo = x.floor();
    (lo as u64, x.ceil() as u64, x - lo)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force μ'(K1, K2, s) by enumeration.
    fn mu_cs_brute(k1: u32, k2: u32, s: u32) -> f64 {
        if k1 == 0 {
            return 0.0;
        }
        let total = (s as u64).pow(k1 + k2);
        let mut good = 0u64;
        for code in 0..total {
            let mut a = vec![0u32; s as usize];
            let mut b = vec![0u32; s as usize];
            let mut c = code;
            for t in 0..(k1 + k2) {
                let slot = (c % s as u64) as usize;
                if t < k1 {
                    a[slot] += 1;
                } else {
                    b[slot] += 1;
                }
                c /= s as u64;
            }
            if a.iter().zip(&b).any(|(&ai, &bi)| ai == 1 && bi == 0) {
                good += 1;
            }
        }
        good as f64 / total as f64
    }

    #[test]
    fn recursion_matches_brute_force() {
        let mut table = MuCsTable::new();
        for s in 1..=3u32 {
            for k1 in 0..=4u32 {
                for k2 in 0..=4u32 {
                    if (s as u64).pow(k1 + k2) > 200_000 {
                        continue;
                    }
                    let expect = mu_cs_brute(k1, k2, s);
                    let got = table.mu_cs(u64::from(k1), u64::from(k2), s);
                    assert!(
                        (got - expect).abs() < 1e-12,
                        "μ'({k1},{k2},{s}): recursion {got} vs brute {expect}"
                    );
                }
            }
        }
    }

    #[test]
    fn closed_form_matches_recursion() {
        let mut table = MuCsTable::new();
        for s in 1..=4u32 {
            for k1 in 0..=12u64 {
                for k2 in 0..=12u64 {
                    let a = table.mu_cs(k1, k2, s);
                    let b = mu_cs_closed_form(k1, k2, s);
                    assert!(
                        (a - b).abs() < 1e-11,
                        "μ'({k1},{k2},{s}): recursion {a} vs closed {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn reduces_to_mu_without_carrier_contenders() {
        for s in 1..=5u32 {
            for k1 in 0..=60u64 {
                let a = mu_cs_closed_form(k1, 0, s);
                let b = crate::mu::mu_closed_form(k1, s);
                assert!((a - b).abs() < 1e-12, "K1={k1},s={s}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn monotone_decreasing_in_k2() {
        for k1 in 1..=10u64 {
            let mut prev = f64::INFINITY;
            for k2 in 0..=30u64 {
                let v = mu_cs_closed_form(k1, k2, 3);
                assert!(v <= prev + 1e-12, "μ' must decrease in K2");
                prev = v;
            }
        }
    }

    #[test]
    fn carrier_sense_strictly_hurts() {
        // Any carrier contender strictly reduces success probability (when
        // success was possible at all).
        for k1 in 1..=8u64 {
            let with = mu_cs_closed_form(k1, 3, 3);
            let without = mu_cs_closed_form(k1, 0, 3);
            assert!(with < without, "K1={k1}: {with} !< {without}");
        }
    }

    #[test]
    fn known_values() {
        // K1=1, K2=1, s=2: A alone in its slot and B elsewhere: P = 1/2.
        assert!((mu_cs_closed_form(1, 1, 2) - 0.5).abs() < 1e-12);
        // K1=1, K2=0 → certain success.
        assert_eq!(mu_cs_closed_form(1, 0, 7), 1.0);
        // s=1 with any B → failure.
        assert_eq!(mu_cs_closed_form(1, 1, 1), 0.0);
        assert_eq!(mu_cs_closed_form(1, 0, 1), 1.0);
    }

    #[test]
    fn poisson_closed_matches_pmf_mixture() {
        use crate::combinatorics::poisson_pmf;
        for &(l1, l2) in &[(0.5, 0.0), (1.0, 2.0), (3.0, 5.0), (0.2, 10.0)] {
            let analytic = mu_cs_poisson(l1, l2, 3);
            let mut mixed = 0.0;
            for (n1, p1) in poisson_pmf(l1, 1e-13) {
                for &(n2, p2) in &poisson_pmf(l2, 1e-13) {
                    mixed += p1 * p2 * mu_cs_closed_form(n1, n2, 3);
                }
            }
            assert!(
                (analytic - mixed).abs() < 1e-8,
                "λ=({l1},{l2}): analytic {analytic} vs mixture {mixed}"
            );
        }
    }

    #[test]
    fn evaluator_bilinear_consistency() {
        let ev = MuCsEvaluator::new(3, MuMode::Interpolate);
        // Integer lattice points are exact.
        for k1 in 0..6u64 {
            for k2 in 0..6u64 {
                let a = ev.eval(k1 as f64, k2 as f64);
                let b = mu_cs_closed_form(k1, k2, 3);
                assert!((a - b).abs() < 1e-12);
            }
        }
        // 1-D reduction when k2 is integral matches MuEvaluator.
        let mu1d = crate::mu::MuEvaluator::new(3, MuMode::Interpolate);
        for k in [0.3, 1.7, 4.2, 9.9] {
            assert!((ev.eval(k, 0.0) - mu1d.eval(k)).abs() < 1e-12);
        }
        // Bounded.
        for k1 in [0.0, 0.5, 2.5, 8.1] {
            for k2 in [0.0, 0.5, 2.5, 8.1] {
                let v = ev.eval(k1, k2);
                assert!((0.0..=1.0).contains(&v));
            }
        }
    }

    #[test]
    fn evaluator_poisson_mode() {
        let ev = MuCsEvaluator::new(3, MuMode::Poisson);
        assert_eq!(ev.eval(0.0, 5.0), 0.0);
        let a = ev.eval(2.0, 0.0);
        let b = ev.eval(2.0, 4.0);
        assert!(b < a, "carrier contention must hurt: {b} !< {a}");
    }
}
