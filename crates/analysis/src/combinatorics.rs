//! Numerically stable combinatorial helpers for the collision-probability
//! recursions (Eq. 2 and Eq. A.1 of the paper).
//!
//! The recursions need binomial probabilities `C(K,i) q^i (1−q)^{K−i}` for
//! `K` up to several hundred. Evaluating `C(K,i)` directly overflows `f64`
//! near `K ≈ 1030`; all routines here therefore work in probability space
//! (iterative ratio updates) or log space.

/// Natural log of `n!` via Stirling's series for large `n`, exact
/// accumulation below a small cutoff. Accurate to ~1e-12 relative error.
pub fn ln_factorial(n: u64) -> f64 {
    const CUTOFF: u64 = 32;
    if n < CUTOFF {
        let mut acc = 0.0f64;
        for k in 2..=n {
            acc += (k as f64).ln();
        }
        return acc;
    }
    // Stirling with correction terms: ln n! ≈ n ln n − n + ½ln(2πn)
    //   + 1/(12n) − 1/(360n³) + 1/(1260n⁵)
    let x = n as f64;
    let x2 = x * x;
    x * x.ln() - x + 0.5 * (2.0 * std::f64::consts::PI * x).ln() + 1.0 / (12.0 * x)
        - 1.0 / (360.0 * x * x2)
        + 1.0 / (1260.0 * x * x2 * x2)
}

/// `ln C(n, k)`; returns `-inf` when `k > n`.
pub fn ln_binomial(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

/// Falling factorial `(n)_k = n (n−1) ⋯ (n−k+1)` as `f64`; 1 when `k = 0`,
/// 0 when `k > n`.
pub fn falling_factorial(n: u64, k: u64) -> f64 {
    if k > n {
        return 0.0;
    }
    let mut acc = 1.0f64;
    for i in 0..k {
        acc *= (n - i) as f64;
    }
    acc
}

/// Iterator over the full Binomial(K, q) pmf: yields `(i, P[X = i])` for
/// `i = 0..=K` using the stable ratio recurrence
/// `P(i+1) = P(i) · (K−i)/(i+1) · q/(1−q)`.
///
/// For `q = 1` the mass collapses onto `i = K`; for `q = 0` onto `i = 0`.
pub struct BinomialPmf {
    k: u64,
    q: f64,
    i: u64,
    p: f64,
    done: bool,
}

impl BinomialPmf {
    /// Creates the pmf iterator. `q` must be a probability.
    pub fn new(k: u64, q: f64) -> Self {
        assert!((0.0..=1.0).contains(&q), "q must be in [0,1], got {q}");
        let p0 = if q >= 1.0 {
            if k == 0 {
                1.0
            } else {
                0.0
            }
        } else {
            // `powi` for bit-stable results at every realistic K; beyond
            // i32 range the power underflows anyway, so `powf` is exact
            // enough and avoids a panic.
            i32::try_from(k).map_or_else(|_| (1.0 - q).powf(k as f64), |k| (1.0 - q).powi(k))
        };
        BinomialPmf {
            k,
            q,
            i: 0,
            p: p0,
            done: false,
        }
    }
}

impl Iterator for BinomialPmf {
    type Item = (u64, f64);

    fn next(&mut self) -> Option<(u64, f64)> {
        if self.done {
            return None;
        }
        let out = (self.i, self.p);
        if self.i == self.k {
            self.done = true;
        } else if self.q >= 1.0 {
            // all mass at i = K
            self.i += 1;
            self.p = if self.i == self.k { 1.0 } else { 0.0 };
        } else {
            let ratio = self.q / (1.0 - self.q);
            self.p *= (self.k - self.i) as f64 / (self.i + 1) as f64 * ratio;
            self.i += 1;
        }
        Some(out)
    }
}

/// Poisson(λ) pmf values `(i, P[X = i])` for `i = 0..` until the tail mass
/// falls below `tail_eps` (after the mode, so the loop always terminates).
pub fn poisson_pmf(lambda: f64, tail_eps: f64) -> Vec<(u64, f64)> {
    assert!(lambda >= 0.0 && tail_eps > 0.0);
    // nss-lint: allow(float-safety) — exact degenerate case: λ = 0 puts all mass at 0
    if lambda == 0.0 {
        return vec![(0, 1.0)];
    }
    let mut out = Vec::new();
    let mut p = (-lambda).exp();
    let mut i = 0u64;
    // For very large λ, e^{−λ} underflows; start from the mode in log space.
    // nss-lint: allow(float-safety) — exact IEEE zero detects e^{−λ} underflow, the trigger for the log-space path
    if p == 0.0 {
        let mode = lambda.floor() as u64;
        let ln_pmode = -lambda + mode as f64 * lambda.ln() - ln_factorial(mode);
        // walk down from the mode in both directions
        let pmode = ln_pmode.exp();
        let mut lo: Vec<(u64, f64)> = Vec::new();
        let mut pi = pmode;
        let mut j = mode;
        while pi > tail_eps && j > 0 {
            pi *= j as f64 / lambda;
            j -= 1;
            lo.push((j, pi));
        }
        lo.reverse();
        out.extend(lo);
        out.push((mode, pmode));
        let mut pi = pmode;
        let mut j = mode;
        loop {
            j += 1;
            pi *= lambda / j as f64;
            if pi < tail_eps {
                break;
            }
            out.push((j, pi));
        }
        return out;
    }
    loop {
        out.push((i, p));
        i += 1;
        p *= lambda / i as f64;
        if i as f64 > lambda && p < tail_eps {
            break;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_factorial_small_exact() {
        assert_eq!(ln_factorial(0), 0.0);
        assert_eq!(ln_factorial(1), 0.0);
        assert!((ln_factorial(5) - 120.0f64.ln()).abs() < 1e-12);
        assert!((ln_factorial(10) - 3628800.0f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn ln_factorial_stirling_matches_exact() {
        // Compare Stirling branch against exact summation at the cutoff zone.
        for n in [32u64, 50, 100, 500, 1000] {
            let exact: f64 = (2..=n).map(|k| (k as f64).ln()).sum();
            let approx = ln_factorial(n);
            assert!(
                (exact - approx).abs() / exact < 1e-12,
                "n={n}: {exact} vs {approx}"
            );
        }
    }

    #[test]
    fn ln_binomial_values() {
        assert!((ln_binomial(5, 2) - 10.0f64.ln()).abs() < 1e-12);
        assert!((ln_binomial(10, 5) - 252.0f64.ln()).abs() < 1e-10);
        assert_eq!(ln_binomial(3, 4), f64::NEG_INFINITY);
        assert_eq!(ln_binomial(7, 0), 0.0);
    }

    #[test]
    fn falling_factorial_values() {
        assert_eq!(falling_factorial(5, 0), 1.0);
        assert_eq!(falling_factorial(5, 1), 5.0);
        assert_eq!(falling_factorial(5, 3), 60.0);
        assert_eq!(falling_factorial(5, 5), 120.0);
        assert_eq!(falling_factorial(5, 6), 0.0);
        assert_eq!(falling_factorial(0, 0), 1.0);
    }

    #[test]
    fn binomial_pmf_sums_to_one() {
        for &(k, q) in &[
            (0u64, 0.5),
            (1, 0.3),
            (10, 0.0),
            (10, 1.0),
            (50, 0.2),
            (300, 1.0 / 3.0),
        ] {
            let total: f64 = BinomialPmf::new(k, q).map(|(_, p)| p).sum();
            assert!((total - 1.0).abs() < 1e-9, "K={k} q={q}: sum {total}");
        }
    }

    #[test]
    fn binomial_pmf_matches_log_space() {
        let k = 40u64;
        let q = 0.25;
        for (i, p) in BinomialPmf::new(k, q) {
            let lp = ln_binomial(k, i) + i as f64 * q.ln() + (k - i) as f64 * (1.0 - q).ln();
            assert!(
                (p - lp.exp()).abs() < 1e-12,
                "i={i}: iterative {p} vs log {l}",
                l = lp.exp()
            );
        }
    }

    #[test]
    fn binomial_pmf_degenerate_q() {
        let pmf: Vec<_> = BinomialPmf::new(5, 1.0).collect();
        assert_eq!(pmf.len(), 6);
        assert_eq!(pmf[5], (5, 1.0));
        assert!(pmf[..5].iter().all(|&(_, p)| p == 0.0));
        let pmf: Vec<_> = BinomialPmf::new(5, 0.0).collect();
        assert_eq!(pmf[0], (0, 1.0));
        assert!(pmf[1..].iter().all(|&(_, p)| p == 0.0));
    }

    #[test]
    fn binomial_pmf_mean() {
        let k = 120u64;
        let q = 0.37;
        let mean: f64 = BinomialPmf::new(k, q).map(|(i, p)| i as f64 * p).sum();
        assert!((mean - k as f64 * q).abs() < 1e-8);
    }

    #[test]
    fn poisson_pmf_normalizes_and_means() {
        for &lambda in &[0.0, 0.5, 3.0, 25.0, 150.0] {
            let pmf = poisson_pmf(lambda, 1e-14);
            let total: f64 = pmf.iter().map(|&(_, p)| p).sum();
            assert!((total - 1.0).abs() < 1e-8, "λ={lambda}: sum {total}");
            let mean: f64 = pmf.iter().map(|&(i, p)| i as f64 * p).sum();
            assert!((mean - lambda).abs() < 1e-6, "λ={lambda}: mean {mean}");
        }
    }

    #[test]
    fn poisson_pmf_huge_lambda_log_branch() {
        // λ = 800 underflows e^{−λ}; exercises the mode-centred branch.
        let pmf = poisson_pmf(800.0, 1e-12);
        let total: f64 = pmf.iter().map(|&(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-6, "sum {total}");
        let mean: f64 = pmf.iter().map(|&(i, p)| i as f64 * p).sum();
        assert!((mean - 800.0).abs() < 0.01, "mean {mean}");
    }
}
