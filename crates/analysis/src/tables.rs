//! Table-driven kernels shared across the (ρ × p) parameter sweeps.
//!
//! Every cell of a density × probability sweep runs the same ring recursion
//! with the same geometry: the lens areas `A(x, k)` / `B(x, k)` (and the
//! quadrature abscissae they are evaluated at) depend only on `(P, r,
//! quad_points[, cs_factor])` — never on `ρ` or `p`. The seed implementation
//! re-evaluated those lens integrals through closures for every cell, every
//! phase, and every quadrature point; this module precomputes them **once**
//! and shares them across the whole sweep:
//!
//! * [`GeometryTables`] — `A(x_q, j, k)` and `B(x_q, j, k)` sampled at
//!   exactly the composite-Simpson abscissae used by
//!   [`crate::quadrature::simpson`], plus the matching point weights. Its
//!   [`GeometryTables::integrate`] replicates `simpson`'s accumulation order
//!   term for term, so a table-driven integral is **bitwise identical** to
//!   the closure-driven one.
//! * [`SharedKernel`] — geometry tables + μ/μ′ evaluators + a [`MuTable`]
//!   bundled behind an `Arc` so sweep workers share one allocation.
//! * [`KernelCache`] — interns `SharedKernel`s by config fingerprint
//!   ([`KernelKey`]); repeated sweeps over the same base configuration reuse
//!   the same kernel, including across threads.
//! * [`MuMemo`] / [`MuCsMemo`] — per-run memoization of the closed-form μ
//!   lattice values behind the interpolating evaluators. `mu_closed_form`
//!   is a pure function, so caching its integer-lattice values and
//!   replicating the interpolation arithmetic preserves results bitwise
//!   while removing the `O(s)` `powf` chain from the inner loop.

use crate::mu::{MuEvaluator, MuMode, MuTable};
use crate::mu_cs::{mu_cs_closed_form, MuCsEvaluator};
use crate::ring_geometry::RingGeometry;
use crate::ring_model::RingModelConfig;
use nss_model::comm::CollisionRule;
use parking_lot::RwLock;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Precomputed lens-area tables at the Simpson abscissae.
///
/// For a node in ring `j` at offset `x` from the ring's inner boundary, the
/// recursion needs `A(x, k)` (area of ring `k` within transmission range)
/// and, under carrier sensing, `B(x, k)` (area within the carrier annulus).
/// Both are sampled at the `n + 1` composite-Simpson abscissae over `[0, r]`
/// for every `(j, k)` ring pair, where `n` is `quad_points` rounded up to
/// even exactly as [`crate::quadrature::simpson`] does.
#[derive(Debug, Clone)]
pub struct GeometryTables {
    p: u32,
    r: f64,
    quad_points: usize,
    cs_factor: Option<f64>,
    /// Number of Simpson panels (even); there are `n + 1` abscissae.
    n: usize,
    /// Panel width `h = r / n`, computed as `simpson` computes it.
    h: f64,
    /// `xs[i]` = the `i`-th Simpson abscissa: `0.0`, `i·h`, …, `r`.
    xs: Vec<f64>,
    /// `a[((j-1)·P + (k-1))·(n+1) + i]` = `A(xs[i], k)` for a ring-`j` node.
    a: Vec<f64>,
    /// Same layout as `a`, for `B`; empty unless built with a `cs_factor`.
    b: Vec<f64>,
}

impl GeometryTables {
    /// Builds the tables for a `P`-ring field of ring width `r`, sampling at
    /// the `simpson` abscissae for `quad_points` panels. `cs_factor` also
    /// builds the carrier-sense `B` table (for `CollisionRule::CarrierSense`).
    pub fn build(p: u32, r: f64, quad_points: usize, cs_factor: Option<f64>) -> Self {
        let geom = RingGeometry::new(p, r);
        // Replicate simpson's panel rounding and abscissa arithmetic exactly:
        // n rounded up to even, h = (b − a)/n, interior points a + i·h, and
        // the endpoints taken as a and b themselves.
        let n = if quad_points.is_multiple_of(2) {
            quad_points.max(2)
        } else {
            quad_points + 1
        };
        let (lo, hi) = (0.0f64, r);
        let h = (hi - lo) / n as f64;
        let mut xs = Vec::with_capacity(n + 1);
        xs.push(lo);
        for i in 1..n {
            xs.push(lo + i as f64 * h);
        }
        xs.push(hi);

        let pu = p as usize;
        let stride = n + 1;
        let mut a = vec![0.0f64; pu * pu * stride];
        for j in 1..=p {
            for k in 1..=p {
                let base = ((j as usize - 1) * pu + (k as usize - 1)) * stride;
                for (i, &x) in xs.iter().enumerate() {
                    a[base + i] = geom.a_area(j, x, k);
                }
            }
        }
        let b = if let Some(factor) = cs_factor {
            let mut b = vec![0.0f64; pu * pu * stride];
            for j in 1..=p {
                for k in 1..=p {
                    let base = ((j as usize - 1) * pu + (k as usize - 1)) * stride;
                    for (i, &x) in xs.iter().enumerate() {
                        b[base + i] = geom.b_area(j, x, k, factor);
                    }
                }
            }
            b
        } else {
            Vec::new()
        };

        GeometryTables {
            p,
            r,
            quad_points,
            cs_factor,
            n,
            h,
            xs,
            a,
            b,
        }
    }

    /// Ring count `P`.
    pub fn rings(&self) -> u32 {
        self.p
    }

    /// Ring width (= transmission radius) `r`.
    pub fn r(&self) -> f64 {
        self.r
    }

    /// The `quad_points` the tables were built for (pre-rounding).
    pub fn quad_points(&self) -> usize {
        self.quad_points
    }

    /// The carrier-sense factor the `B` table was built for, if any.
    pub fn cs_factor(&self) -> Option<f64> {
        self.cs_factor
    }

    /// Number of Simpson panels `n` (even); abscissa count is `n + 1`.
    pub fn panels(&self) -> usize {
        self.n
    }

    /// The Simpson abscissae `0 = x_0 < x_1 < … < x_n = r`.
    pub fn abscissae(&self) -> &[f64] {
        &self.xs
    }

    /// `A(x_i, k)` for a ring-`j` node (`j`, `k` 1-based; `i` abscissa index).
    #[inline]
    pub fn a(&self, j: u32, k: u32, i: usize) -> f64 {
        let pu = self.p as usize;
        self.a[((j as usize - 1) * pu + (k as usize - 1)) * (self.n + 1) + i]
    }

    /// `B(x_i, k)` for a ring-`j` node. Panics if built without a `cs_factor`.
    #[inline]
    pub fn b(&self, j: u32, k: u32, i: usize) -> f64 {
        assert!(
            !self.b.is_empty(),
            "GeometryTables built without a carrier-sense factor"
        );
        let pu = self.p as usize;
        self.b[((j as usize - 1) * pu + (k as usize - 1)) * (self.n + 1) + i]
    }

    /// Row of `A(·, k)` values across all abscissae for a ring-`j` node.
    #[inline]
    pub fn a_row(&self, j: u32, k: u32) -> &[f64] {
        let pu = self.p as usize;
        let base = ((j as usize - 1) * pu + (k as usize - 1)) * (self.n + 1);
        &self.a[base..base + self.n + 1]
    }

    /// Row of `B(·, k)` values across all abscissae for a ring-`j` node.
    #[inline]
    pub fn b_row(&self, j: u32, k: u32) -> &[f64] {
        assert!(
            !self.b.is_empty(),
            "GeometryTables built without a carrier-sense factor"
        );
        let pu = self.p as usize;
        let base = ((j as usize - 1) * pu + (k as usize - 1)) * (self.n + 1);
        &self.b[base..base + self.n + 1]
    }

    /// Approximate heap footprint of the tables in bytes.
    pub fn bytes(&self) -> usize {
        (self.xs.capacity() + self.a.capacity() + self.b.capacity()) * std::mem::size_of::<f64>()
    }

    /// Integrates `f(i, x_i)` over `[0, r]`, replicating
    /// [`crate::quadrature::simpson`]'s accumulation order exactly: the two
    /// endpoint terms first, then interior points in index order with 4/2
    /// weights, then one multiplication by `h/3`. For any `g`,
    /// `tables.integrate(|_, x| g(x))` is bitwise equal to
    /// `simpson(g, 0.0, r, quad_points)`.
    #[inline]
    pub fn integrate(&self, mut f: impl FnMut(usize, f64) -> f64) -> f64 {
        let n = self.n;
        let mut acc = f(0, self.xs[0]) + f(n, self.xs[n]);
        for i in 1..n {
            let w = if i % 2 == 1 { 4.0 } else { 2.0 };
            acc += w * f(i, self.xs[i]);
        }
        acc * self.h / 3.0
    }
}

/// Per-run memo of the interpolating μ evaluator.
///
/// [`MuEvaluator::eval`] in `Interpolate` mode calls the `O(s)` closed form
/// at `⌊k⌋` and `⌈k⌉` for every quadrature point of every ring of every
/// phase. The lattice values are pure, so this memo caches them in a flat
/// vector and replays the evaluator's interpolation arithmetic verbatim —
/// results are bitwise identical to `MuEvaluator::eval`. `Poisson` mode has
/// no lattice structure and delegates to the evaluator unchanged.
#[derive(Debug, Clone)]
pub struct MuMemo {
    ev: MuEvaluator,
    /// `vals[k] = μ(k, s)`; `NaN` marks a not-yet-computed entry.
    vals: Vec<f64>,
    /// Lattice lookups served from the memo (maintained in `obs` builds).
    hits: u64,
    /// Lattice lookups that ran the `O(s)` closed form.
    misses: u64,
}

impl MuMemo {
    /// Wraps an evaluator.
    pub fn new(ev: MuEvaluator) -> Self {
        MuMemo {
            ev,
            vals: Vec::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// `(hits, misses)` of the lattice memo. Zero in non-`obs` builds —
    /// maintaining the counts costs two branches per quadrature point, so
    /// they are compiled out with the rest of the instrumentation.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    #[inline]
    fn lattice(&mut self, k: u64) -> f64 {
        let idx = k as usize;
        if idx >= self.vals.len() {
            self.vals.resize(idx + 1, f64::NAN);
        }
        let v = self.vals[idx];
        if v.is_nan() {
            if nss_obs::enabled() {
                self.misses += 1;
            }
            let fresh = crate::mu::mu_closed_form(k, self.ev.slots());
            self.vals[idx] = fresh;
            fresh
        } else {
            if nss_obs::enabled() {
                self.hits += 1;
            }
            v
        }
    }

    /// `μ(k, s)` for real `k`; bitwise equal to [`MuEvaluator::eval`].
    #[inline]
    pub fn eval(&mut self, k: f64) -> f64 {
        if self.ev.mode() != MuMode::Interpolate {
            return self.ev.eval(k);
        }
        let k = k.max(0.0);
        let lo = k.floor();
        let hi = k.ceil();
        let mu_lo = self.lattice(lo as u64);
        if lo == hi {
            return mu_lo;
        }
        let mu_hi = self.lattice(hi as u64);
        mu_lo + (k - lo) * (mu_hi - mu_lo)
    }
}

/// Per-run memo of the bilinear carrier-sense μ′ evaluator; the 2-D
/// analogue of [`MuMemo`], bitwise equal to [`MuCsEvaluator::eval`].
#[derive(Debug, Clone)]
pub struct MuCsMemo {
    ev: MuCsEvaluator,
    vals: HashMap<(u64, u64), f64>,
    hits: u64,
    misses: u64,
}

impl MuCsMemo {
    /// Wraps an evaluator.
    pub fn new(ev: MuCsEvaluator) -> Self {
        MuCsMemo {
            ev,
            vals: HashMap::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// `(hits, misses)` of the lattice memo; zero in non-`obs` builds
    /// (see [`MuMemo::stats`]).
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    #[inline]
    fn lattice(&mut self, k1: u64, k2: u64) -> f64 {
        let s = self.ev.slots();
        let mut fresh = false;
        let v = *self.vals.entry((k1, k2)).or_insert_with(|| {
            fresh = true;
            mu_cs_closed_form(k1, k2, s)
        });
        if nss_obs::enabled() {
            if fresh {
                self.misses += 1;
            } else {
                self.hits += 1;
            }
        }
        v
    }

    /// `μ'(k1, k2, s)` for real arguments; bitwise equal to
    /// [`MuCsEvaluator::eval`].
    #[inline]
    pub fn eval(&mut self, k1: f64, k2: f64) -> f64 {
        if self.ev.mode() != MuMode::Interpolate {
            return self.ev.eval(k1, k2);
        }
        let k1 = k1.max(0.0);
        let k2 = k2.max(0.0);
        let (a0, a1, fa) = lattice(k1);
        let (b0, b1, fb) = lattice(k2);
        let f00 = self.lattice(a0, b0);
        let f10 = self.lattice(a1, b0);
        let f01 = self.lattice(a0, b1);
        let f11 = self.lattice(a1, b1);
        let fx0 = f00 + fa * (f10 - f00);
        let fx1 = f01 + fa * (f11 - f01);
        fx0 + fb * (fx1 - fx0)
    }
}

#[inline]
fn lattice(x: f64) -> (u64, u64, f64) {
    let lo = x.floor();
    (lo as u64, x.ceil() as u64, x - lo)
}

/// Everything a [`crate::ring_model::RingModel`] run needs that does *not*
/// depend on `ρ` or the broadcast probability — built once, shared by
/// reference across all cells of a sweep.
#[derive(Debug)]
pub struct SharedKernel {
    /// The ring decomposition (cheap, kept for geometric queries).
    pub geom: RingGeometry,
    /// Lens-area tables at the Simpson abscissae.
    pub tables: GeometryTables,
    /// The μ evaluator (transmission-range collisions).
    pub mu: MuEvaluator,
    /// The μ′ evaluator (carrier-sense collisions).
    pub mu_cs: MuCsEvaluator,
    /// Ring areas `C_1..C_P` (1-based ring `j` at index `j − 1`).
    pub ring_areas: Vec<f64>,
    /// The paper's DP table for μ, shared so sweeps can pre-grow it once
    /// (see [`MuTable::ensure`]) instead of every worker racing the lazy
    /// `RwLock` growth path.
    pub mu_table: MuTable,
}

impl SharedKernel {
    /// Builds the kernel for a configuration (only the ρ/p-independent
    /// fields are read).
    pub fn build(config: &RingModelConfig) -> Self {
        let geom = RingGeometry::new(config.p, config.r);
        let cs_factor = match config.collision {
            CollisionRule::TransmissionRange => None,
            CollisionRule::CarrierSense { factor } => Some(factor),
        };
        SharedKernel {
            geom,
            tables: GeometryTables::build(config.p, config.r, config.quad_points, cs_factor),
            mu: MuEvaluator::new(config.s, config.mu_mode),
            mu_cs: MuCsEvaluator::new(config.s, config.mu_mode),
            ring_areas: (1..=config.p).map(|j| geom.ring_area(j)).collect(),
            mu_table: MuTable::new(config.s),
        }
    }

    /// True if this kernel serves the given configuration (same
    /// ρ/p-independent fingerprint).
    pub fn matches(&self, config: &RingModelConfig) -> bool {
        KernelKey::of(config) == self.key()
    }

    /// Approximate heap footprint of the kernel in bytes: geometry tables,
    /// ring areas, and the μ DP table's current extent.
    pub fn bytes(&self) -> usize {
        self.tables.bytes()
            + self.ring_areas.capacity() * std::mem::size_of::<f64>()
            + self.mu_table.bytes()
    }

    /// The fingerprint this kernel was built from.
    pub fn key(&self) -> KernelKey {
        KernelKey {
            p: self.geom.p,
            s: self.mu.slots(),
            r_bits: self.geom.r.to_bits(),
            quad_points: self.tables.quad_points(),
            mu_mode: self.mu.mode(),
            cs_bits: self.tables.cs_factor().map(f64::to_bits),
        }
    }
}

/// The ρ/p-independent fingerprint of a [`RingModelConfig`]: two configs
/// with equal keys can share one [`SharedKernel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct KernelKey {
    /// Ring count `P`.
    pub p: u32,
    /// Jitter slots `s`.
    pub s: u32,
    /// `r.to_bits()` (bit-exact float identity).
    pub r_bits: u64,
    /// Simpson panels requested.
    pub quad_points: usize,
    /// μ evaluation mode.
    pub mu_mode: MuMode,
    /// Carrier-sense factor bits, `None` for transmission-range collisions.
    pub cs_bits: Option<u64>,
}

impl KernelKey {
    /// The fingerprint of a configuration.
    pub fn of(config: &RingModelConfig) -> Self {
        KernelKey {
            p: config.p,
            s: config.s,
            r_bits: config.r.to_bits(),
            quad_points: config.quad_points,
            mu_mode: config.mu_mode,
            cs_bits: match config.collision {
                CollisionRule::TransmissionRange => None,
                CollisionRule::CarrierSense { factor } => Some(factor.to_bits()),
            },
        }
    }
}

/// Interning cache of [`SharedKernel`]s keyed by [`KernelKey`].
///
/// Read-mostly: after the first sweep over a configuration every lookup is
/// a shared-lock probe returning an `Arc` clone. A `BTreeMap` (rather than
/// a hash map) keeps every traversal — `bytes()`, debug dumps — in key
/// order, so cache reports are deterministic across runs. Use
/// [`KernelCache::global`] for the process-wide instance the sweep and
/// experiment pipelines share.
///
/// ```
/// use nss_analysis::prelude::*;
/// use nss_analysis::tables::KernelCache;
///
/// let cache = KernelCache::new();
/// let config = RingModelConfig::paper(80.0, 0.3);
/// let first = cache.get(&config);
/// // Same (p, s, r, quadrature, μ-mode) ⇒ the same interned tables; ρ and
/// // the broadcast probability are *not* part of the key.
/// let again = cache.get(&RingModelConfig::paper(140.0, 0.3));
/// assert!(std::sync::Arc::ptr_eq(&first, &again));
/// let (hits, misses) = cache.stats();
/// assert_eq!((hits, misses), (1, 1));
/// ```
#[derive(Debug, Default)]
pub struct KernelCache {
    map: RwLock<BTreeMap<KernelKey, Arc<SharedKernel>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl KernelCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The process-wide cache.
    pub fn global() -> &'static KernelCache {
        static GLOBAL: OnceLock<KernelCache> = OnceLock::new();
        GLOBAL.get_or_init(KernelCache::new)
    }

    /// Returns the interned kernel for `config`, building it on first use.
    pub fn get(&self, config: &RingModelConfig) -> Arc<SharedKernel> {
        let key = KernelKey::of(config);
        if let Some(kernel) = self.map.read().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            nss_obs::counter!("analysis.kernel_cache.hit").inc();
            return Arc::clone(kernel);
        }
        let mut map = self.map.write();
        // Double-checked: another thread may have built it while we waited.
        if let Some(kernel) = map.get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            nss_obs::counter!("analysis.kernel_cache.hit").inc();
            return Arc::clone(kernel);
        }
        let kernel = Arc::new(SharedKernel::build(config));
        self.misses.fetch_add(1, Ordering::Relaxed);
        nss_obs::counter!("analysis.kernel_cache.miss").inc();
        nss_obs::counter!("analysis.kernel_cache.interned_bytes").add(kernel.bytes() as u64);
        map.insert(key, Arc::clone(&kernel));
        if nss_obs::enabled() {
            // Live footprint (counterpart of the cumulative interned_bytes
            // counter): summed under the write lock we already hold.
            nss_obs::gauge!("analysis.kernel_cache.bytes")
                .set(map.values().map(|k| k.bytes()).sum::<usize>() as f64);
        }
        kernel
    }

    /// Number of interned kernels.
    pub fn len(&self) -> usize {
        self.map.read().len()
    }

    /// True if no kernel has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.map.read().is_empty()
    }

    /// `(hits, misses)` over the cache's lifetime. Maintained in every
    /// build — the two relaxed atomic adds sit next to a lock acquisition,
    /// so they are free relative to the lookup itself.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Approximate heap footprint of every currently interned kernel.
    pub fn bytes(&self) -> usize {
        self.map.read().values().map(|k| k.bytes()).sum()
    }

    /// Drops every interned kernel (outstanding `Arc`s stay valid).
    /// Hit/miss statistics are preserved.
    pub fn clear(&self) {
        self.map.write().clear();
        nss_obs::gauge!("analysis.kernel_cache.bytes").set(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quadrature::simpson;

    fn cfg() -> RingModelConfig {
        RingModelConfig::paper(60.0, 0.3)
    }

    #[test]
    fn abscissae_match_simpson_arguments() {
        // Record the exact x values simpson feeds its integrand.
        let seen = std::cell::RefCell::new(Vec::new());
        let _ = simpson(
            |x| {
                seen.borrow_mut().push(x);
                x
            },
            0.0,
            1.0,
            64,
        );
        let seen = seen.into_inner();
        let tables = GeometryTables::build(5, 1.0, 64, None);
        // simpson visits a, b, then interior points; the table stores them
        // sorted. Compare as sets with bitwise equality.
        let mut seen_sorted = seen.clone();
        seen_sorted.sort_by(f64::total_cmp);
        assert_eq!(seen_sorted.len(), tables.abscissae().len());
        for (a, b) in seen_sorted.iter().zip(tables.abscissae()) {
            assert_eq!(a.to_bits(), b.to_bits(), "{a} vs {b}");
        }
    }

    #[test]
    fn odd_quad_points_round_up_like_simpson() {
        let tables = GeometryTables::build(3, 1.0, 33, None);
        assert_eq!(tables.panels(), 34);
        assert_eq!(tables.abscissae().len(), 35);
        let tables = GeometryTables::build(3, 1.0, 0, None);
        assert_eq!(tables.panels(), 2);
    }

    #[test]
    fn table_lookups_equal_direct_geometry_bitwise() {
        let geom = RingGeometry::new(5, 1.0);
        let tables = GeometryTables::build(5, 1.0, 32, Some(2.0));
        for j in 1..=5u32 {
            for k in 1..=5u32 {
                for (i, &x) in tables.abscissae().iter().enumerate() {
                    assert_eq!(
                        tables.a(j, k, i).to_bits(),
                        geom.a_area(j, x, k).to_bits(),
                        "A({j},{x},{k})"
                    );
                    assert_eq!(
                        tables.b(j, k, i).to_bits(),
                        geom.b_area(j, x, k, 2.0).to_bits(),
                        "B({j},{x},{k})"
                    );
                }
            }
        }
    }

    #[test]
    fn integrate_replicates_simpson_bitwise() {
        let tables = GeometryTables::build(5, 1.0, 64, None);
        let g = |x: f64| (1.5 + x) * (x * 3.1).sin().abs();
        let via_simpson = simpson(g, 0.0, 1.0, 64);
        let via_tables = tables.integrate(|_, x| g(x));
        assert_eq!(via_simpson.to_bits(), via_tables.to_bits());
    }

    #[test]
    fn mu_memo_matches_evaluator_bitwise() {
        for mode in [MuMode::Interpolate, MuMode::Poisson] {
            let ev = MuEvaluator::new(3, mode);
            let mut memo = MuMemo::new(ev);
            for i in 0..2000 {
                let k = f64::from(i) * 0.071;
                assert_eq!(
                    memo.eval(k).to_bits(),
                    ev.eval(k).to_bits(),
                    "mode {mode:?}, k = {k}"
                );
            }
            // Negative clamp path.
            assert_eq!(memo.eval(-1.0).to_bits(), ev.eval(-1.0).to_bits());
        }
    }

    #[test]
    fn mu_cs_memo_matches_evaluator_bitwise() {
        for mode in [MuMode::Interpolate, MuMode::Poisson] {
            let ev = MuCsEvaluator::new(3, mode);
            let mut memo = MuCsMemo::new(ev);
            for i in 0..60 {
                for j in 0..60 {
                    let k1 = f64::from(i) * 0.37;
                    let k2 = f64::from(j) * 0.53;
                    assert_eq!(
                        memo.eval(k1, k2).to_bits(),
                        ev.eval(k1, k2).to_bits(),
                        "mode {mode:?}, k = ({k1}, {k2})"
                    );
                }
            }
        }
    }

    #[test]
    fn cache_interns_by_fingerprint() {
        let cache = KernelCache::new();
        let a = cache.get(&cfg());
        // ρ and p changes hit the same kernel.
        let mut other = cfg();
        other.rho = 140.0;
        other.prob = 0.9;
        let b = cache.get(&other);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.len(), 1);
        // quad_points changes miss.
        let mut fine = cfg();
        fine.quad_points = 128;
        let c = cache.get(&fine);
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(cache.len(), 2);
        // Carrier sense gets its own kernel with B tables.
        let mut cs = cfg();
        cs.collision = CollisionRule::CARRIER_SENSE_2R;
        let d = cache.get(&cs);
        assert!(!Arc::ptr_eq(&a, &d));
        assert!(d.tables.cs_factor().is_some());
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn cache_introspection_tracks_hits_misses_and_bytes() {
        let cache = KernelCache::new();
        assert_eq!(cache.stats(), (0, 0));
        assert_eq!(cache.bytes(), 0);
        let a = cache.get(&cfg());
        assert_eq!(cache.stats(), (0, 1));
        let _ = cache.get(&cfg());
        let _ = cache.get(&cfg());
        assert_eq!(cache.stats(), (2, 1));
        assert!(cache.bytes() >= a.tables.bytes());
        assert_eq!(cache.bytes(), a.bytes());
        // Clearing drops the kernels but keeps the lifetime statistics.
        cache.clear();
        assert_eq!(cache.bytes(), 0);
        assert_eq!(cache.stats(), (2, 1));
    }

    #[test]
    fn memo_stats_reflect_obs_feature() {
        let mut memo = MuMemo::new(MuEvaluator::new(3, MuMode::Interpolate));
        let _ = memo.eval(1.5);
        let _ = memo.eval(1.5);
        let (hits, misses) = memo.stats();
        if nss_obs::enabled() {
            assert_eq!(misses, 2); // lattice points 1 and 2
            assert_eq!(hits, 2); // revisited on the second eval
        } else {
            assert_eq!((hits, misses), (0, 0));
        }
    }

    #[test]
    fn kernel_matches_its_config() {
        let kernel = SharedKernel::build(&cfg());
        assert!(kernel.matches(&cfg()));
        let mut other = cfg();
        other.rho = 999.0; // ρ is not part of the fingerprint
        assert!(kernel.matches(&other));
        other = cfg();
        other.s = 5;
        assert!(!kernel.matches(&other));
    }

    #[test]
    fn ring_areas_match_geometry() {
        let kernel = SharedKernel::build(&cfg());
        for j in 1..=5u32 {
            assert_eq!(
                kernel.ring_areas[j as usize - 1].to_bits(),
                kernel.geom.ring_area(j).to_bits()
            );
        }
    }
}
