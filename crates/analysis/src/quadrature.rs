//! Numerical integration for the ring recursion (Eq. 4 / Eq. A.3).
//!
//! The integrands are smooth except for kinks where lens configurations
//! change (tangency radii), so composite Simpson with a moderate fixed point
//! count is both fast and accurate; an adaptive variant is provided for
//! verification and for users integrating rougher functions.

/// Composite trapezoid rule with `n ≥ 1` panels.
pub fn trapezoid(f: impl Fn(f64) -> f64, a: f64, b: f64, n: usize) -> f64 {
    assert!(n >= 1, "need at least one panel");
    if a == b {
        return 0.0;
    }
    let h = (b - a) / n as f64;
    let mut acc = 0.5 * (f(a) + f(b));
    for i in 1..n {
        acc += f(a + i as f64 * h);
    }
    acc * h
}

/// Composite Simpson rule with `n` panels (`n` is rounded up to even).
pub fn simpson(f: impl Fn(f64) -> f64, a: f64, b: f64, n: usize) -> f64 {
    if a == b {
        return 0.0;
    }
    let n = if n.is_multiple_of(2) { n.max(2) } else { n + 1 };
    let h = (b - a) / n as f64;
    let mut acc = f(a) + f(b);
    for i in 1..n {
        let w = if i % 2 == 1 { 4.0 } else { 2.0 };
        acc += w * f(a + i as f64 * h);
    }
    acc * h / 3.0
}

/// Adaptive Simpson integration to absolute tolerance `eps`.
///
/// Recursion depth is capped (50) to guarantee termination on pathological
/// integrands; the cap is far beyond what smooth integrands need.
pub fn adaptive_simpson(f: impl Fn(f64) -> f64 + Copy, a: f64, b: f64, eps: f64) -> f64 {
    if a == b {
        return 0.0;
    }
    let fa = f(a);
    let fb = f(b);
    let m = 0.5 * (a + b);
    let fm = f(m);
    let whole = (b - a) / 6.0 * (fa + 4.0 * fm + fb);
    adaptive_rec(f, a, b, fa, fb, fm, whole, eps, 50)
}

#[allow(clippy::too_many_arguments)]
fn adaptive_rec(
    f: impl Fn(f64) -> f64 + Copy,
    a: f64,
    b: f64,
    fa: f64,
    fb: f64,
    fm: f64,
    whole: f64,
    eps: f64,
    depth: u32,
) -> f64 {
    let m = 0.5 * (a + b);
    let lm = 0.5 * (a + m);
    let rm = 0.5 * (m + b);
    let flm = f(lm);
    let frm = f(rm);
    let left = (m - a) / 6.0 * (fa + 4.0 * flm + fm);
    let right = (b - m) / 6.0 * (fm + 4.0 * frm + fb);
    let delta = left + right - whole;
    if depth == 0 || delta.abs() <= 15.0 * eps {
        left + right + delta / 15.0
    } else {
        adaptive_rec(f, a, m, fa, fm, flm, left, eps * 0.5, depth - 1)
            + adaptive_rec(f, m, b, fm, fb, frm, right, eps * 0.5, depth - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn trapezoid_linear_exact() {
        // trapezoid is exact on affine functions even with one panel
        let v = trapezoid(|x| 3.0 * x + 1.0, 0.0, 2.0, 1);
        assert!((v - 8.0).abs() < 1e-12);
    }

    #[test]
    fn simpson_cubic_exact() {
        // Simpson is exact on cubics
        let v = simpson(|x| x * x * x - 2.0 * x, -1.0, 3.0, 2);
        let exact = |x: f64| x.powi(4) / 4.0 - x * x;
        assert!((v - (exact(3.0) - exact(-1.0))).abs() < 1e-10);
    }

    #[test]
    fn simpson_odd_panel_count_rounds_up() {
        let v = simpson(|x| x * x, 0.0, 1.0, 3);
        assert!((v - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn simpson_sine() {
        // Composite-Simpson error bound: (b−a)h⁴/180·max|f⁗| ≈ 1e-7 at 64
        // panels; assert within 1e-6.
        let v = simpson(f64::sin, 0.0, PI, 64);
        assert!((v - 2.0).abs() < 1e-6);
        let v = simpson(f64::sin, 0.0, PI, 512);
        assert!((v - 2.0).abs() < 1e-10);
    }

    #[test]
    fn empty_interval_is_zero() {
        assert_eq!(trapezoid(|x| x, 1.0, 1.0, 4), 0.0);
        assert_eq!(simpson(|x| x, 1.0, 1.0, 4), 0.0);
        assert_eq!(adaptive_simpson(|x| x, 1.0, 1.0, 1e-9), 0.0);
    }

    #[test]
    fn adaptive_matches_analytic() {
        let v = adaptive_simpson(|x| (-x * x).exp(), 0.0, 5.0, 1e-10);
        // erf-based reference: ∫₀⁵ e^{−x²} dx = √π/2 · erf(5) ≈ √π/2
        assert!((v - PI.sqrt() / 2.0).abs() < 1e-8, "{v}");
    }

    #[test]
    fn adaptive_handles_kink() {
        let v = adaptive_simpson(|x| (x - 0.3).abs(), 0.0, 1.0, 1e-10);
        let exact = 0.3f64.powi(2) / 2.0 + 0.7f64.powi(2) / 2.0;
        assert!((v - exact).abs() < 1e-8);
    }

    #[test]
    fn reversed_interval_is_negative() {
        let fwd = simpson(|x| x * x, 0.0, 2.0, 8);
        let rev = simpson(|x| x * x, 2.0, 0.0, 8);
        assert!((fwd + rev).abs() < 1e-12);
    }

    #[test]
    fn fixed_simpson_converges_on_ring_like_integrand() {
        // Integrand shaped like the ring recursion's: weight · smooth prob.
        let f = |x: f64| (4.0 + x) * (1.0 - (-3.0 * x).exp());
        let coarse = simpson(f, 0.0, 1.0, 32);
        let fine = simpson(f, 0.0, 1.0, 1024);
        // O(h⁴) error at 32 panels for this integrand is ~1e-6.
        assert!((coarse - fine).abs() < 1e-5);
    }
}
