//! # nss-analysis — the paper's analytical framework for PB_CAM
//!
//! Implements §4 and Appendix A of Yu, Hong & Prasanna (2005): an
//! analytical model of **probability-based broadcasting under the
//! Collision Aware Model** that predicts reachability, latency, and energy
//! (broadcast count) as functions of the broadcast probability `p`, the
//! node density `ρ`, the jitter slot count `s`, and the field size `P`.
//!
//! Pipeline:
//!
//! 1. [`mu`] / [`mu_cs`] — slot-contention success probabilities
//!    `μ(K, s)` (Eq. 2) and the carrier-sense `μ'(K1, K2, s)` (Eq. A.1),
//!    each with the paper's recursion *and* an independently derived
//!    closed form cross-validated in tests.
//! 2. [`ring_geometry`] — the concentric-ring decomposition and the lens
//!    partitions `A(x, k)`, `B(x, k)` (§4.2.2, Appendix A).
//! 3. [`ring_model`] — the phase recursion for `n_j^i` (Eq. 4 / A.3),
//!    producing phase-granular execution profiles.
//! 4. [`tables`] — precomputed geometry/μ kernels ([`tables::GeometryTables`],
//!    [`tables::KernelCache`]) shared across every cell of a sweep; bitwise
//!    equivalent to direct evaluation, ~an order of magnitude cheaper.
//! 5. [`optimize`] / [`sweep`] — probability sweeps and per-density optima
//!    for the four §4.1 metrics (the Fig. 4–7 machinery).
//! 6. [`flooding`] — the Fig. 12 success-rate correlation.
//!
//! ```
//! use nss_analysis::prelude::*;
//!
//! // Reachability of PB_CAM within 5 phases at rho = 60, p = 0.2.
//! let cfg = RingModelConfig::paper(60.0, 0.2);
//! let series = RingModel::new(cfg).run().phase_series();
//! let reach = series.reachability_at_latency(5.0);
//! assert!(reach > 0.3 && reach <= 1.0);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod cfm_cost;
pub mod combinatorics;
pub mod flooding;
pub mod mu;
pub mod mu_cs;
pub mod optimize;
pub mod quadrature;
pub mod ring_geometry;
pub mod ring_model;
pub mod sharded;
pub mod survival;
pub mod sweep;
pub mod tables;

/// Commonly used items, re-exported for glob import.
pub mod prelude {
    pub use crate::cfm_cost::RefinedCfm;
    pub use crate::flooding::{flooding_success_rate, success_rate_correlation, SuccessRateRow};
    pub use crate::mu::{mu_closed_form, MuEvaluator, MuMode, MuTable};
    pub use crate::mu_cs::{mu_cs_closed_form, mu_cs_poisson, MuCsEvaluator, MuCsTable};
    pub use crate::optimize::{refine_golden, Objective, Optimum, ProbabilitySweep};
    pub use crate::ring_geometry::RingGeometry;
    pub use crate::ring_model::{RingModel, RingModelConfig, RingProfile};
    pub use crate::sharded::{CacheWeight, Fingerprint, ShardedCache, ShardedKernelCache};
    pub use crate::survival::{poisson_extinction, survival_estimate, SurvivalEstimate};
    pub use crate::sweep::DensitySweep;
    pub use crate::tables::{GeometryTables, KernelCache, KernelKey, SharedKernel};
}

pub use prelude::*;
