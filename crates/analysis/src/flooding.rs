//! Simple-flooding analysis and the Fig. 12 success-rate correlation.
//!
//! §6 of the paper defines the *success rate* of a broadcast in simple
//! flooding (CAM, `p = 1`) as the fraction of the sender's neighbors that
//! receive its packet cleanly, and observes that the ratio
//! `p* / success_rate` — with `p*` the latency-constrained optimal
//! probability of Fig. 4(b) — is nearly constant (~11) across densities.
//! That correlation suggests tuning `p` from a locally measurable quantity
//! without knowing the node density (implemented in `nss-core::adaptive`).

use crate::optimize::{Objective, ProbabilitySweep};
use crate::ring_model::{RingModel, RingModelConfig};
use serde::{Deserialize, Serialize};

/// Average per-broadcast delivery success rate of simple flooding in CAM at
/// density `rho`, per the analytical model.
pub fn flooding_success_rate(base: RingModelConfig) -> f64 {
    let mut cfg = base;
    cfg.prob = 1.0;
    RingModel::cached(cfg)
        .with_success_rate_tracking()
        .run()
        .mean_success_rate()
        .unwrap_or(0.0)
}

/// One row of the Fig. 12 comparison.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SuccessRateRow {
    /// Node density (expected neighbors per node).
    pub rho: f64,
    /// Flooding per-broadcast success rate at this density.
    pub success_rate: f64,
    /// Latency-constrained optimal broadcast probability (Fig. 4b).
    pub optimal_prob: f64,
    /// `optimal_prob / success_rate` — the paper reports ≈ 11 throughout.
    pub ratio: f64,
}

/// Computes the Fig. 12 series: flooding success rate vs the optimal
/// probability for `MaxReachAtLatency{latency_phases}` over a density range.
pub fn success_rate_correlation(
    base: RingModelConfig,
    rhos: &[f64],
    probs: &[f64],
    latency_phases: f64,
) -> Vec<SuccessRateRow> {
    rhos.iter()
        .map(|&rho| {
            let mut cfg = base;
            cfg.rho = rho;
            let sr = flooding_success_rate(cfg);
            let sweep = ProbabilitySweep::run(cfg, probs);
            let opt = sweep
                .optimum(Objective::MaxReachAtLatency {
                    phases: latency_phases,
                })
                .map_or(0.0, |o| o.prob);
            SuccessRateRow {
                rho,
                success_rate: sr,
                optimal_prob: opt,
                ratio: if sr > 0.0 { opt / sr } else { f64::NAN },
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_base() -> RingModelConfig {
        let mut cfg = RingModelConfig::paper(60.0, 1.0);
        cfg.quad_points = 32;
        cfg
    }

    #[test]
    fn success_rate_in_unit_interval_and_falls_with_density() {
        let mut lo_cfg = fast_base();
        lo_cfg.rho = 20.0;
        let mut hi_cfg = fast_base();
        hi_cfg.rho = 140.0;
        let lo = flooding_success_rate(lo_cfg);
        let hi = flooding_success_rate(hi_cfg);
        assert!(lo > 0.0 && lo < 1.0, "sr(20) = {lo}");
        assert!(hi > 0.0 && hi < 1.0, "sr(140) = {hi}");
        assert!(hi < lo, "success rate must fall with density: {hi} !< {lo}");
    }

    #[test]
    fn correlation_rows_well_formed() {
        let probs: Vec<f64> = (1..=20).map(|i| f64::from(i) / 20.0).collect();
        let rows = success_rate_correlation(fast_base(), &[20.0, 80.0], &probs, 5.0);
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert!(row.success_rate > 0.0 && row.success_rate < 1.0);
            assert!(row.optimal_prob > 0.0 && row.optimal_prob <= 1.0);
            assert!(row.ratio.is_finite() && row.ratio > 0.0);
        }
        // Both curves decrease with density...
        assert!(rows[1].success_rate < rows[0].success_rate);
        assert!(rows[1].optimal_prob <= rows[0].optimal_prob);
    }

    #[test]
    fn ratio_roughly_stable_across_density() {
        // The paper's qualitative claim: the ratio varies far less than
        // either quantity alone. Check the ratio's spread is much smaller
        // than the optimal probability's spread (relative terms).
        let probs: Vec<f64> = (1..=40).map(|i| f64::from(i) / 40.0).collect();
        let rows = success_rate_correlation(fast_base(), &[20.0, 60.0, 100.0, 140.0], &probs, 5.0);
        let ratios: Vec<f64> = rows.iter().map(|r| r.ratio).collect();
        let prob_spread = rows[0].optimal_prob / rows[3].optimal_prob;
        let rmax = ratios.iter().cloned().fold(f64::MIN, f64::max);
        let rmin = ratios.iter().cloned().fold(f64::MAX, f64::min);
        let ratio_spread = rmax / rmin;
        assert!(
            ratio_spread < prob_spread,
            "ratio spread {ratio_spread} should be tighter than p* spread {prob_spread}"
        );
    }
}
