//! Property tests: any finite input data must render to a well-formed SVG
//! with every mark inside the canvas.

use nss_plot::{Chart, Series};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_series_render_inside_canvas(
        series_data in proptest::collection::vec(
            proptest::collection::vec((-1e4f64..1e4, -1e4f64..1e4), 1..40),
            1..6,
        ),
    ) {
        let mut chart = Chart::new("prop", "x", "y");
        for (i, pts) in series_data.iter().enumerate() {
            chart = chart.with_series(Series::new(format!("s{i}"), pts.clone()));
        }
        let svg = chart.render_svg();
        prop_assert!(svg.starts_with("<svg"));
        prop_assert!(svg.trim_end().ends_with("</svg>"));
        // Balanced text tags.
        prop_assert_eq!(svg.matches("<text").count(), svg.matches("</text>").count());
        // Every polyline point inside the 720x480 canvas (with float slack).
        for cap in svg.split("points=\"").skip(1) {
            let coords = cap.split('"').next().unwrap();
            for pair in coords.split_whitespace() {
                let mut it = pair.split(',');
                let x: f64 = it.next().unwrap().parse().unwrap();
                let y: f64 = it.next().unwrap().parse().unwrap();
                prop_assert!((-1.0..=721.0).contains(&x), "x={x} outside canvas");
                prop_assert!((-1.0..=481.0).contains(&y), "y={y} outside canvas");
            }
        }
    }

    #[test]
    fn gappy_series_never_panic(
        pts in proptest::collection::vec(
            (0.0f64..10.0, proptest::option::of(-5.0f64..5.0)),
            0..30,
        ),
    ) {
        let svg = Chart::new("g", "x", "y")
            .with_series(Series::with_gaps("g", pts))
            .render_svg();
        prop_assert!(svg.contains("</svg>"));
    }

    #[test]
    fn nice_ticks_cover_within_one_step(lo in -1e6f64..1e6, span in 0.0f64..1e6) {
        let hi = lo + span;
        let ticks = nss_plot::nice_ticks(lo, hi, 6);
        prop_assert!(ticks.len() >= 2);
        // Ticks are lattice-aligned, so the first may sit up to one step
        // inside the range (and symmetrically at the top) — but never
        // further, and never outside by more than a step.
        let step = ticks[1] - ticks[0];
        prop_assert!(step > 0.0);
        prop_assert!(*ticks.first().unwrap() <= lo + step, "first tick too deep");
        prop_assert!(*ticks.last().unwrap() >= hi - step, "last tick too shallow");
        prop_assert!(*ticks.first().unwrap() >= lo - step, "first tick too far out");
        prop_assert!(*ticks.last().unwrap() <= hi + step, "last tick too far out");
        // Sorted, uniform.
        for w in ticks.windows(2) {
            prop_assert!(w[0] < w[1], "ticks not increasing: {ticks:?}");
            prop_assert!((w[1] - w[0] - step).abs() < step * 1e-6, "non-uniform");
        }
    }
}
