//! # nss-plot — minimal SVG line charts
//!
//! A dependency-free renderer sufficient to regenerate the paper's figures
//! (multi-series line charts with markers, axes, ticks, and a legend) as
//! standalone SVG files. Not a general plotting library: exactly the
//! surface the reproduction harness needs, implemented carefully.
//!
//! ```
//! use nss_plot::{Chart, Series};
//!
//! let svg = Chart::new("reachability vs p", "p", "reachability")
//!     .with_series(Series::new("rho=20", vec![(0.1, 0.3), (0.5, 0.8), (1.0, 0.6)]))
//!     .with_series(Series::new("rho=140", vec![(0.1, 0.6), (0.5, 0.5), (1.0, 0.4)]))
//!     .render_svg();
//! assert!(svg.starts_with("<svg"));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod chart;
pub mod scale;
pub mod svg;

pub use chart::{Chart, Series};
pub use scale::{nice_ticks, LinearScale};
