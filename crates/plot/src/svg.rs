//! Tiny SVG document builder: just the elements the chart renderer emits,
//! with XML-escaped text.

use std::fmt::Write as _;

/// An SVG document under construction.
#[derive(Debug, Clone)]
pub struct SvgDoc {
    width: u32,
    height: u32,
    body: String,
}

impl SvgDoc {
    /// Starts a document of the given pixel size.
    pub fn new(width: u32, height: u32) -> Self {
        SvgDoc {
            width,
            height,
            body: String::new(),
        }
    }

    /// A straight line segment.
    pub fn line(&mut self, x1: f64, y1: f64, x2: f64, y2: f64, stroke: &str, width: f64) {
        let _ = writeln!(
            self.body,
            r#"<line x1="{x1:.2}" y1="{y1:.2}" x2="{x2:.2}" y2="{y2:.2}" stroke="{stroke}" stroke-width="{width}"/>"#
        );
    }

    /// An open polyline through the given pixel points.
    pub fn polyline(&mut self, pts: &[(f64, f64)], stroke: &str, width: f64) {
        if pts.len() < 2 {
            return;
        }
        let mut path = String::with_capacity(pts.len() * 12);
        for (i, (x, y)) in pts.iter().enumerate() {
            let _ = write!(path, "{}{x:.2},{y:.2}", if i == 0 { "" } else { " " });
        }
        let _ = writeln!(
            self.body,
            r#"<polyline points="{path}" fill="none" stroke="{stroke}" stroke-width="{width}"/>"#
        );
    }

    /// A filled circle (series marker).
    pub fn circle(&mut self, cx: f64, cy: f64, r: f64, fill: &str) {
        let _ = writeln!(
            self.body,
            r#"<circle cx="{cx:.2}" cy="{cy:.2}" r="{r:.2}" fill="{fill}"/>"#
        );
    }

    /// A filled rectangle.
    pub fn rect(&mut self, x: f64, y: f64, w: f64, h: f64, fill: &str) {
        let _ = writeln!(
            self.body,
            r#"<rect x="{x:.2}" y="{y:.2}" width="{w:.2}" height="{h:.2}" fill="{fill}"/>"#
        );
    }

    /// Text anchored per `anchor` ("start" | "middle" | "end").
    pub fn text(&mut self, x: f64, y: f64, content: &str, size: f64, anchor: &str) {
        let _ = writeln!(
            self.body,
            r#"<text x="{x:.2}" y="{y:.2}" font-size="{size}" font-family="sans-serif" text-anchor="{anchor}">{}</text>"#,
            escape(content)
        );
    }

    /// Text rotated 90° counter-clockwise around its anchor (y-axis label).
    pub fn vtext(&mut self, x: f64, y: f64, content: &str, size: f64) {
        let _ = writeln!(
            self.body,
            r#"<text x="{x:.2}" y="{y:.2}" font-size="{size}" font-family="sans-serif" text-anchor="middle" transform="rotate(-90 {x:.2} {y:.2})">{}</text>"#,
            escape(content)
        );
    }

    /// Finalizes the document.
    pub fn finish(self) -> String {
        format!(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{w}\" height=\"{h}\" viewBox=\"0 0 {w} {h}\">\n\
             <rect x=\"0\" y=\"0\" width=\"{w}\" height=\"{h}\" fill=\"white\"/>\n{body}</svg>\n",
            w = self.width,
            h = self.height,
            body = self.body
        )
    }
}

/// Escapes XML-special characters in text content.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            _ => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn document_structure() {
        let mut doc = SvgDoc::new(640, 480);
        doc.line(0.0, 0.0, 10.0, 10.0, "#000", 1.0);
        doc.circle(5.0, 5.0, 2.0, "red");
        doc.text(1.0, 2.0, "hello", 12.0, "start");
        let svg = doc.finish();
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert!(svg.contains(r#"width="640""#));
        assert!(svg.contains("<line"));
        assert!(svg.contains("<circle"));
        assert!(svg.contains(">hello</text>"));
    }

    #[test]
    fn polyline_needs_two_points() {
        let mut doc = SvgDoc::new(10, 10);
        doc.polyline(&[(1.0, 1.0)], "#000", 1.0);
        assert!(!doc.clone().finish().contains("polyline"));
        doc.polyline(&[(1.0, 1.0), (2.0, 2.0)], "#000", 1.0);
        assert!(doc.finish().contains("polyline"));
    }

    #[test]
    fn escaping() {
        assert_eq!(escape("a<b&c>\"d'"), "a&lt;b&amp;c&gt;&quot;d&apos;");
        let mut doc = SvgDoc::new(10, 10);
        doc.text(0.0, 0.0, "p < 0.5 & q > 0.1", 10.0, "middle");
        let svg = doc.finish();
        assert!(svg.contains("p &lt; 0.5 &amp; q &gt; 0.1"));
        assert!(!svg.contains("p < 0.5"));
    }

    #[test]
    fn balanced_tags() {
        let mut doc = SvgDoc::new(100, 100);
        for i in 0..5 {
            doc.text(0.0, f64::from(i), "t", 10.0, "start");
            doc.vtext(1.0, f64::from(i), "v", 10.0);
        }
        let svg = doc.finish();
        assert_eq!(svg.matches("<text").count(), 10);
        assert_eq!(svg.matches("</text>").count(), 10);
        assert_eq!(svg.matches("<svg").count(), 1);
        assert_eq!(svg.matches("</svg>").count(), 1);
    }
}
