//! Linear data→pixel scales and "nice" axis tick generation.

/// An affine map from a data interval to a pixel interval.
///
/// Handles inverted pixel ranges (SVG's y axis grows downward) and
/// degenerate data ranges (a single value maps to the pixel midpoint).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearScale {
    d0: f64,
    d1: f64,
    p0: f64,
    p1: f64,
}

impl LinearScale {
    /// Creates a scale mapping `[d0, d1]` onto `[p0, p1]`.
    pub fn new(d0: f64, d1: f64, p0: f64, p1: f64) -> Self {
        assert!(
            d0.is_finite() && d1.is_finite(),
            "data range must be finite"
        );
        LinearScale { d0, d1, p0, p1 }
    }

    /// Maps a data value to pixels.
    pub fn map(&self, v: f64) -> f64 {
        let span = self.d1 - self.d0;
        if span == 0.0 {
            return 0.5 * (self.p0 + self.p1);
        }
        self.p0 + (v - self.d0) / span * (self.p1 - self.p0)
    }

    /// The data range.
    pub fn domain(&self) -> (f64, f64) {
        (self.d0, self.d1)
    }
}

/// Produces "nice" lattice-aligned tick positions spanning `[lo, hi]` with
/// roughly `target` ticks, using the conventional 1–2–5 progression. The
/// first/last ticks may fall up to one step inside or outside the range
/// (renderers filter to the visible axis).
///
/// Always returns at least two ticks; for a degenerate range it brackets
/// the value.
pub fn nice_ticks(lo: f64, hi: f64, target: usize) -> Vec<f64> {
    assert!(lo.is_finite() && hi.is_finite());
    let (lo, hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
    let span = hi - lo;
    if span <= 0.0 {
        // Degenerate: bracket the value with a unit-ish interval.
        let pad = if lo == 0.0 { 1.0 } else { lo.abs() * 0.1 };
        return vec![lo - pad, lo, lo + pad];
    }
    let target = target.max(2) as f64;
    let raw_step = span / target;
    let mag = 10f64.powf(raw_step.log10().floor());
    let norm = raw_step / mag;
    let step = if norm < 1.5 {
        1.0
    } else if norm < 3.5 {
        2.0
    } else if norm < 7.5 {
        5.0
    } else {
        10.0
    } * mag;
    let first = (lo / step).floor() * step;
    let mut ticks = Vec::new();
    let mut t = first;
    // Guard against float drift producing an extra/missing final tick.
    while t <= hi + step * 0.5 {
        if t >= lo - step * 0.5 {
            // Snap near-zero drift to exactly zero for clean labels.
            ticks.push(if t.abs() < step * 1e-9 { 0.0 } else { t });
        }
        t += step;
    }
    if ticks.len() < 2 {
        ticks = vec![lo, hi];
    }
    ticks
}

/// Formats a tick label compactly (strips trailing zeros, switches to
/// scientific notation for extreme magnitudes).
pub fn format_tick(v: f64) -> String {
    if v == 0.0 {
        return "0".to_string();
    }
    let a = v.abs();
    if !(1e-4..1e6).contains(&a) {
        return format!("{v:.1e}");
    }
    let s = format!("{v:.6}");
    let s = s.trim_end_matches('0').trim_end_matches('.');
    s.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_maps_endpoints_and_midpoint() {
        let s = LinearScale::new(0.0, 10.0, 100.0, 200.0);
        assert_eq!(s.map(0.0), 100.0);
        assert_eq!(s.map(10.0), 200.0);
        assert_eq!(s.map(5.0), 150.0);
        // Extrapolation is linear.
        assert_eq!(s.map(20.0), 300.0);
    }

    #[test]
    fn scale_inverted_pixels() {
        // SVG y: data up = pixel down.
        let s = LinearScale::new(0.0, 1.0, 400.0, 50.0);
        assert_eq!(s.map(0.0), 400.0);
        assert_eq!(s.map(1.0), 50.0);
        assert!(s.map(0.25) > s.map(0.75));
    }

    #[test]
    fn scale_degenerate_domain() {
        let s = LinearScale::new(3.0, 3.0, 0.0, 100.0);
        assert_eq!(s.map(3.0), 50.0);
        assert_eq!(s.map(99.0), 50.0);
    }

    #[test]
    fn ticks_cover_range_with_nice_steps() {
        let t = nice_ticks(0.0, 1.0, 5);
        assert!(t.len() >= 4 && t.len() <= 8, "{t:?}");
        assert!(t[0] <= 0.0 + 1e-12);
        assert!(*t.last().unwrap() >= 1.0 - 1e-12);
        // Steps are uniform.
        let step = t[1] - t[0];
        for w in t.windows(2) {
            assert!((w[1] - w[0] - step).abs() < 1e-9);
        }
        // 1-2-5 progression.
        let mag = 10f64.powf(step.log10().floor());
        let norm = step / mag;
        assert!(
            [1.0, 2.0, 5.0].iter().any(|&n| (norm - n).abs() < 1e-9),
            "step {step} not nice"
        );
    }

    #[test]
    fn ticks_various_ranges() {
        for (lo, hi) in [(0.0, 140.0), (-5.0, 5.0), (0.01, 0.02), (1e4, 5e4)] {
            let t = nice_ticks(lo, hi, 6);
            assert!(t.len() >= 2, "({lo},{hi}) → {t:?}");
            assert!(t.first().unwrap() <= &(lo + 1e-9 * hi.abs().max(1.0)));
            assert!(t.last().unwrap() >= &(hi - 1e-9 * hi.abs().max(1.0)));
        }
    }

    #[test]
    fn ticks_degenerate_range() {
        let t = nice_ticks(2.0, 2.0, 5);
        assert!(t.len() >= 2);
        assert!(t.first().unwrap() < &2.0 && t.last().unwrap() > &2.0);
        let t = nice_ticks(0.0, 0.0, 5);
        assert!(t.contains(&0.0));
    }

    #[test]
    fn ticks_reversed_input() {
        let a = nice_ticks(1.0, 0.0, 5);
        let b = nice_ticks(0.0, 1.0, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn zero_snapping() {
        let t = nice_ticks(-1.0, 1.0, 4);
        assert!(t.contains(&0.0), "{t:?}");
    }

    #[test]
    fn tick_formatting() {
        assert_eq!(format_tick(0.0), "0");
        assert_eq!(format_tick(0.2), "0.2");
        assert_eq!(format_tick(1.0), "1");
        assert_eq!(format_tick(140.0), "140");
        assert_eq!(format_tick(0.05), "0.05");
        assert!(format_tick(1e-7).contains('e'));
        assert!(format_tick(3.2e7).contains('e'));
    }
}
