//! Multi-series line charts.

use crate::scale::{format_tick, nice_ticks, LinearScale};
use crate::svg::SvgDoc;
use std::io;
use std::path::Path;

/// An 8-color palette (Okabe–Ito, colorblind-safe).
const PALETTE: [&str; 8] = [
    "#0072B2", "#D55E00", "#009E73", "#CC79A7", "#E69F00", "#56B4E9", "#F0E442", "#000000",
];

/// One plotted series: a label and data points. `None` y-values break the
/// line (the paper's figures omit infeasible parameter combinations).
#[derive(Debug, Clone)]
pub struct Series {
    label: String,
    points: Vec<(f64, Option<f64>)>,
    markers: bool,
}

impl Series {
    /// A fully-defined series.
    pub fn new(label: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Series {
            label: label.into(),
            points: points.into_iter().map(|(x, y)| (x, Some(y))).collect(),
            markers: true,
        }
    }

    /// A series with gaps: `None` y-values are skipped and split the line.
    pub fn with_gaps(label: impl Into<String>, points: Vec<(f64, Option<f64>)>) -> Self {
        Series {
            label: label.into(),
            points,
            markers: true,
        }
    }

    /// Disables point markers (lines only).
    pub fn without_markers(mut self) -> Self {
        self.markers = false;
        self
    }

    fn finite_points(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.points
            .iter()
            .filter_map(|&(x, y)| y.map(|y| (x, y)))
            .filter(|(x, y)| x.is_finite() && y.is_finite())
    }

    /// Contiguous runs of defined points (polyline segments).
    fn segments(&self) -> Vec<Vec<(f64, f64)>> {
        let mut segs = Vec::new();
        let mut cur = Vec::new();
        for &(x, y) in &self.points {
            match y {
                Some(y) if x.is_finite() && y.is_finite() => cur.push((x, y)),
                _ => {
                    if !cur.is_empty() {
                        segs.push(std::mem::take(&mut cur));
                    }
                }
            }
        }
        if !cur.is_empty() {
            segs.push(cur);
        }
        segs
    }
}

/// A line chart under construction.
#[derive(Debug, Clone)]
pub struct Chart {
    title: String,
    x_label: String,
    y_label: String,
    series: Vec<Series>,
    width: u32,
    height: u32,
    y_range: Option<(f64, f64)>,
}

impl Chart {
    /// Creates an empty chart.
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        Chart {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
            width: 720,
            height: 480,
            y_range: None,
        }
    }

    /// Adds a series (builder style).
    pub fn with_series(mut self, s: Series) -> Self {
        self.series.push(s);
        self
    }

    /// Overrides the canvas size (default 720×480).
    pub fn with_size(mut self, width: u32, height: u32) -> Self {
        assert!(width >= 200 && height >= 150, "canvas too small to render");
        self.width = width;
        self.height = height;
        self
    }

    /// Pins the y-axis range (default: auto from the data with 5% padding).
    pub fn with_y_range(mut self, lo: f64, hi: f64) -> Self {
        assert!(lo < hi, "empty y range");
        self.y_range = Some((lo, hi));
        self
    }

    fn data_extent(&self) -> ((f64, f64), (f64, f64)) {
        let mut x = (f64::INFINITY, f64::NEG_INFINITY);
        let mut y = (f64::INFINITY, f64::NEG_INFINITY);
        for s in &self.series {
            for (px, py) in s.finite_points() {
                x.0 = x.0.min(px);
                x.1 = x.1.max(px);
                y.0 = y.0.min(py);
                y.1 = y.1.max(py);
            }
        }
        if !x.0.is_finite() {
            x = (0.0, 1.0);
            y = (0.0, 1.0);
        }
        if x.0 == x.1 {
            x = (x.0 - 0.5, x.1 + 0.5);
        }
        if y.0 == y.1 {
            y = (y.0 - 0.5, y.1 + 0.5);
        }
        // 5% vertical padding.
        let pad = (y.1 - y.0) * 0.05;
        ((x.0, x.1), (y.0 - pad, y.1 + pad))
    }

    /// Renders the chart to an SVG string.
    pub fn render_svg(&self) -> String {
        let w = f64::from(self.width);
        let h = f64::from(self.height);
        let (ml, mr, mt, mb) = (64.0, 16.0, 36.0, 48.0); // margins
        let legend_w = if self.series.len() > 1 { 120.0 } else { 0.0 };
        let plot = (ml, w - mr - legend_w, mt, h - mb); // x0, x1, y0, y1

        let ((dx0, dx1), auto_y) = self.data_extent();
        let (dy0, dy1) = self.y_range.unwrap_or(auto_y);
        let xs = LinearScale::new(dx0, dx1, plot.0, plot.1);
        let ys = LinearScale::new(dy0, dy1, plot.3, plot.2); // inverted

        let mut doc = SvgDoc::new(self.width, self.height);

        // Frame.
        doc.line(plot.0, plot.3, plot.1, plot.3, "#333", 1.0); // x axis
        doc.line(plot.0, plot.2, plot.0, plot.3, "#333", 1.0); // y axis

        // Ticks + grid.
        for t in nice_ticks(dx0, dx1, 8) {
            if t < dx0 - 1e-9 || t > dx1 + 1e-9 {
                continue;
            }
            let px = xs.map(t);
            doc.line(px, plot.3, px, plot.3 + 4.0, "#333", 1.0);
            doc.line(px, plot.2, px, plot.3, "#eee", 0.5);
            doc.text(px, plot.3 + 16.0, &format_tick(t), 11.0, "middle");
        }
        for t in nice_ticks(dy0, dy1, 6) {
            if t < dy0 - 1e-9 || t > dy1 + 1e-9 {
                continue;
            }
            let py = ys.map(t);
            doc.line(plot.0 - 4.0, py, plot.0, py, "#333", 1.0);
            doc.line(plot.0, py, plot.1, py, "#eee", 0.5);
            doc.text(plot.0 - 7.0, py + 4.0, &format_tick(t), 11.0, "end");
        }

        // Series.
        for (i, s) in self.series.iter().enumerate() {
            let color = PALETTE[i % PALETTE.len()];
            for seg in s.segments() {
                let pixels: Vec<(f64, f64)> =
                    seg.iter().map(|&(x, y)| (xs.map(x), ys.map(y))).collect();
                doc.polyline(&pixels, color, 1.6);
                if s.markers {
                    for &(px, py) in &pixels {
                        doc.circle(px, py, 2.4, color);
                    }
                }
            }
        }

        // Legend.
        if self.series.len() > 1 {
            let lx = plot.1 + 12.0;
            let mut ly = plot.2 + 8.0;
            for (i, s) in self.series.iter().enumerate() {
                let color = PALETTE[i % PALETTE.len()];
                doc.line(lx, ly, lx + 18.0, ly, color, 2.0);
                doc.circle(lx + 9.0, ly, 2.4, color);
                doc.text(lx + 24.0, ly + 4.0, &s.label, 11.0, "start");
                ly += 18.0;
            }
        }

        // Labels.
        doc.text(w / 2.0, 20.0, &self.title, 14.0, "middle");
        doc.text(
            (plot.0 + plot.1) / 2.0,
            h - 12.0,
            &self.x_label,
            12.0,
            "middle",
        );
        doc.vtext(18.0, (plot.2 + plot.3) / 2.0, &self.y_label, 12.0);

        doc.finish()
    }

    /// Renders and writes the chart to a file.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        std::fs::write(path, self.render_svg())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_chart() -> Chart {
        Chart::new("t", "x", "y")
            .with_series(Series::new("a", vec![(0.0, 0.0), (1.0, 1.0), (2.0, 0.5)]))
            .with_series(Series::new("b", vec![(0.0, 1.0), (2.0, 0.0)]))
    }

    #[test]
    fn renders_well_formed_svg() {
        let svg = sample_chart().render_svg();
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        // two series → two polylines at least (plus grid lines as <line>)
        assert!(svg.matches("<polyline").count() >= 2);
        // legend present for 2 series
        assert!(svg.contains(">a</text>"));
        assert!(svg.contains(">b</text>"));
        // axis labels + title
        assert!(svg.contains(">t</text>"));
        assert!(svg.contains(">x</text>"));
        assert!(svg.contains(">y</text>"));
    }

    #[test]
    fn empty_chart_renders() {
        let svg = Chart::new("empty", "x", "y").render_svg();
        assert!(svg.starts_with("<svg"));
        assert!(!svg.contains("<polyline"));
    }

    #[test]
    fn single_point_series() {
        let svg = Chart::new("p", "x", "y")
            .with_series(Series::new("s", vec![(1.0, 1.0)]))
            .render_svg();
        // No polyline from a single point, but a marker.
        assert!(!svg.contains("<polyline"));
        assert!(svg.contains("<circle"));
    }

    #[test]
    fn gaps_split_polylines() {
        let s = Series::with_gaps(
            "g",
            vec![
                (0.0, Some(1.0)),
                (1.0, Some(2.0)),
                (2.0, None),
                (3.0, Some(1.5)),
                (4.0, Some(1.0)),
            ],
        );
        assert_eq!(s.segments().len(), 2);
        let svg = Chart::new("g", "x", "y").with_series(s).render_svg();
        assert_eq!(svg.matches("<polyline").count(), 2);
    }

    #[test]
    fn nan_points_dropped() {
        let s = Series::new("n", vec![(0.0, 0.0), (1.0, f64::NAN), (2.0, 2.0)]);
        assert_eq!(s.segments().len(), 2);
        let svg = Chart::new("n", "x", "y").with_series(s).render_svg();
        assert!(!svg.contains("NaN"));
    }

    #[test]
    fn fixed_y_range_respected() {
        let svg = sample_chart().with_y_range(0.0, 1.0).render_svg();
        assert!(svg.contains(">1</text>"));
        // padding from auto-range would have produced 1.05-ish ticks
        assert!(!svg.contains(">1.1<"));
    }

    #[test]
    fn save_writes_file() {
        let dir = std::env::temp_dir().join("nss_plot_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("chart.svg");
        sample_chart().save(&path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.starts_with("<svg"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    #[should_panic(expected = "canvas too small")]
    fn tiny_canvas_rejected() {
        let _ = Chart::new("t", "x", "y").with_size(10, 10);
    }

    #[test]
    #[should_panic(expected = "empty y range")]
    fn empty_y_range_rejected() {
        let _ = Chart::new("t", "x", "y").with_y_range(1.0, 1.0);
    }
}
