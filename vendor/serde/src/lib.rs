//! Vendored subset of `serde` (see `vendor/README.md`).
//!
//! This workspace uses serde purely as a *capability marker* on model and
//! result types — `#[derive(Serialize, Deserialize)]` — and never invokes an
//! actual serializer (outputs are written as CSV/JSON by hand). The traits
//! here are therefore empty marker traits, and the derives expand to empty
//! impls. Swapping in real serde requires no source changes outside
//! `vendor/`.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker for types that can be serialized.
pub trait Serialize {}

/// Marker for types that can be deserialized from borrowed data with
/// lifetime `'de`.
pub trait Deserialize<'de>: Sized {}

/// Marker for types deserializable from any lifetime (blanket-implemented).
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T> DeserializeOwned for T where T: for<'de> Deserialize<'de> {}

macro_rules! impl_markers {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {}
        impl<'de> Deserialize<'de> for $t {}
    )*};
}

impl_markers!(
    (),
    bool,
    char,
    f32,
    f64,
    i8,
    i16,
    i32,
    i64,
    i128,
    isize,
    u8,
    u16,
    u32,
    u64,
    u128,
    usize,
    String,
);

impl<T: Serialize> Serialize for Vec<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}

impl<T: Serialize> Serialize for Option<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}

impl<T: Serialize> Serialize for Box<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {}

impl<T: Serialize, const N: usize> Serialize for [T; N] {}
impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {}
impl<'de, A: Deserialize<'de>, B: Deserialize<'de>> Deserialize<'de> for (A, B) {}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {}
impl<'de, A: Deserialize<'de>, B: Deserialize<'de>, C: Deserialize<'de>> Deserialize<'de>
    for (A, B, C)
{
}
