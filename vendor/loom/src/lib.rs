//! Minimal loom-style exhaustive-interleaving model checker.
//!
//! API-compatible subset of the `loom` crate sufficient for checking the
//! atomic-cursor work-claiming protocol used by `nss-analysis`'s parallel
//! sweep and `nss-sim`'s replication runner: [`model`] reruns a test body
//! under **every** schedule of its spawned threads, where a scheduling
//! decision is taken before each atomic operation (and at thread startup
//! and exit). A property that holds under `model` holds under every
//! sequentially consistent interleaving of those operations.
//!
//! # How it works
//!
//! Threads spawned with [`thread::spawn`] run as real OS threads, but a
//! cooperative scheduler (a mutex + condvar handshake) admits exactly one
//! at a time. Each wrapped atomic operation first *yields*: the running
//! thread picks which runnable thread proceeds next, records the choice,
//! and blocks until it is picked again. One execution therefore produces a
//! decision trace; the driver performs a depth-first search over traces by
//! replaying a prefix and taking the next untried alternative at the
//! deepest branch point (the classic stateless-model-checking loop, cf.
//! CHESS). Exploration is exhaustive up to [`MAX_EXECUTIONS`]; overrunning
//! the bound fails the test rather than silently truncating the search.
//!
//! # Scope and deliberate limits
//!
//! * **Sequential consistency only.** Memory `Ordering` arguments are
//!   accepted for API compatibility but every modeled operation is
//!   executed `SeqCst`; weak-memory reorderings are *not* explored. For
//!   the claim-cursor protocol this is sound to check at SC: the property
//!   (each index handed to exactly one thread) already follows from the
//!   atomicity of `fetch_add` alone, which is ordering-independent.
//! * The closure passed to `model` is the *controller*: it spawns, joins,
//!   and asserts, but its own atomic operations are not interleaved (it
//!   runs between schedules, like loom's main thread before spawn).
//! * Every spawned thread must be joined before the closure returns, or
//!   the execution (and its OS threads) is abandoned mid-schedule.
//! * Scheduling decisions must be the only nondeterminism: the body must
//!   not branch on wall-clock time, ambient randomness, or I/O.

use std::sync::{Arc, Condvar, Mutex};

/// Upper bound on schedules explored by one [`model`] call. The sweep
/// protocol at its test size needs a few thousand; hitting this bound
/// means the modeled state space exploded and the test must shrink.
pub const MAX_EXECUTIONS: usize = 200_000;

// ---------------------------------------------------------------------------
// Scheduler
// ---------------------------------------------------------------------------

#[derive(Default)]
struct State {
    /// Thread currently admitted to run (`None` while the controller picks).
    active: Option<usize>,
    /// Ids of spawned, not-yet-finished threads, in spawn (= id) order so
    /// decision indices are deterministic across replays.
    runnable: Vec<usize>,
    finished: Vec<bool>,
    /// Decision prefix to replay this execution.
    replay: Vec<usize>,
    /// Decisions taken so far this execution.
    depth: usize,
    /// `(choice index, alternatives)` per decision, for the DFS driver.
    trace: Vec<(usize, usize)>,
}

struct Sched {
    st: Mutex<State>,
    cv: Condvar,
}

impl Sched {
    fn new(replay: Vec<usize>) -> Self {
        Sched {
            st: Mutex::new(State {
                replay,
                ..State::default()
            }),
            cv: Condvar::new(),
        }
    }

    /// Takes the next scheduling decision: an index into `runnable`.
    /// Follows the replay prefix, then defaults to the first alternative.
    fn choose(st: &mut State) -> usize {
        let n = st.runnable.len();
        debug_assert!(n > 0, "decision with no runnable thread");
        let idx = if st.depth < st.replay.len() {
            st.replay[st.depth]
        } else {
            0
        };
        debug_assert!(idx < n, "replayed choice out of range");
        st.trace.push((idx, n));
        st.depth += 1;
        st.runnable[idx]
    }

    /// Yield point before an atomic operation by thread `me`: hand the
    /// schedule to whichever runnable thread the explorer picks (possibly
    /// `me` again) and block until re-admitted.
    fn yield_point(&self, me: usize) {
        let mut st = self
            .st
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if st.active != Some(me) {
            // A panic is unwinding elsewhere; don't fight over the schedule.
            return;
        }
        let next = Self::choose(&mut st);
        st.active = Some(next);
        self.cv.notify_all();
        while st.active != Some(me) {
            st = self
                .cv
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Blocks thread `me` until first admitted to run.
    fn wait_for_start(&self, me: usize) {
        let mut st = self
            .st
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        while st.active != Some(me) {
            st = self
                .cv
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Marks `me` finished and releases the schedule; the controller (or a
    /// joining thread) takes the next decision.
    fn finish(&self, me: usize) {
        let mut st = self
            .st
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        st.finished[me] = true;
        st.runnable.retain(|&t| t != me);
        if st.active == Some(me) {
            st.active = None;
        }
        self.cv.notify_all();
    }

    /// Controller-side wait for thread `id` to finish, taking scheduling
    /// decisions whenever the schedule is unowned.
    fn join_wait(&self, id: usize) {
        let mut st = self
            .st
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        loop {
            if st.finished[id] {
                return;
            }
            if st.active.is_none() && !st.runnable.is_empty() {
                let next = Self::choose(&mut st);
                st.active = Some(next);
                self.cv.notify_all();
            }
            st = self
                .cv
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }
}

// Execution context of the current OS thread: the scheduler, and this
// thread's model id (`None` = the controller running the model closure).
thread_local! {
    static CTX: std::cell::RefCell<Option<(Arc<Sched>, Option<usize>)>> =
        const { std::cell::RefCell::new(None) };
}

fn with_ctx<R>(f: impl FnOnce(Option<(Arc<Sched>, Option<usize>)>) -> R) -> R {
    CTX.with(|c| f(c.borrow().clone()))
}

/// Yield point used by the atomic wrappers: a no-op outside [`model`] and
/// on the controller thread.
fn maybe_yield() {
    with_ctx(|ctx| {
        if let Some((sched, Some(me))) = ctx {
            sched.yield_point(me);
        }
    });
}

// ---------------------------------------------------------------------------
// Public API: model driver
// ---------------------------------------------------------------------------

/// Runs `f` under every schedule of its spawned threads (see crate docs).
/// Panics — with the schedule still current, so assertion messages point at
/// the failing interleaving — as soon as any schedule fails.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    let mut replay: Vec<usize> = Vec::new();
    let mut executions = 0usize;
    loop {
        executions += 1;
        assert!(
            executions <= MAX_EXECUTIONS,
            "loom: exceeded {MAX_EXECUTIONS} schedules; shrink the model"
        );
        let sched = Arc::new(Sched::new(replay.clone()));
        CTX.with(|c| *c.borrow_mut() = Some((Arc::clone(&sched), None)));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(&f));
        CTX.with(|c| *c.borrow_mut() = None);
        if let Err(payload) = result {
            std::panic::resume_unwind(payload);
        }
        // Next DFS leaf: bump the deepest decision with an untried
        // alternative; drop everything below it.
        let mut trace = {
            let st = sched
                .st
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            st.trace.clone()
        };
        loop {
            match trace.last_mut() {
                None => return, // space exhausted: every schedule passed
                Some((idx, n)) if *idx + 1 < *n => {
                    *idx += 1;
                    break;
                }
                Some(_) => {
                    trace.pop();
                }
            }
        }
        replay = trace.into_iter().map(|(idx, _)| idx).collect();
    }
}

/// Number of schedules `f` generates — exposed for shim self-tests.
pub fn schedule_count<F>(f: F) -> usize
where
    F: Fn() + Send + Sync + 'static,
{
    let counter = Arc::new(std::sync::atomic::AtomicUsize::new(0));
    let c2 = Arc::clone(&counter);
    model(move || {
        c2.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        f();
    });
    counter.load(std::sync::atomic::Ordering::SeqCst)
}

// ---------------------------------------------------------------------------
// Public API: threads
// ---------------------------------------------------------------------------

/// Cooperatively scheduled threads (see [`spawn`]).
pub mod thread {
    use super::{Arc, Sched, CTX};

    /// Handle to a modeled thread; join to collect its result (panics from
    /// the thread surface as `Err`, exactly like `std`).
    pub struct JoinHandle<T> {
        sched: Arc<Sched>,
        id: usize,
        inner: std::thread::JoinHandle<T>,
    }

    impl<T> JoinHandle<T> {
        /// Waits for the thread under the model schedule, then reaps it.
        pub fn join(self) -> std::thread::Result<T> {
            self.sched.join_wait(self.id);
            self.inner.join()
        }
    }

    /// Spawns a thread under the model scheduler. Must be called from
    /// inside a [`super::model`] closure; the thread does not run until
    /// the explorer admits it.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        let sched = CTX.with(|c| {
            c.borrow()
                .as_ref()
                .map(|(s, _)| Arc::clone(s))
                .expect("loom::thread::spawn outside loom::model")
        });
        let id = {
            let mut st = sched
                .st
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            let id = st.finished.len();
            st.finished.push(false);
            st.runnable.push(id);
            id
        };
        let tsched = Arc::clone(&sched);
        let inner = std::thread::spawn(move || {
            CTX.with(|c| *c.borrow_mut() = Some((Arc::clone(&tsched), Some(id))));
            tsched.wait_for_start(id);
            let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
            tsched.finish(id);
            match out {
                Ok(v) => v,
                Err(payload) => std::panic::resume_unwind(payload),
            }
        });
        JoinHandle { sched, id, inner }
    }
}

// ---------------------------------------------------------------------------
// Public API: sync
// ---------------------------------------------------------------------------

/// Modeled synchronization primitives.
pub mod sync {
    pub use std::sync::Arc;

    /// Modeled atomics: every operation is a scheduling point.
    pub mod atomic {
        pub use std::sync::atomic::Ordering;

        macro_rules! modeled_atomic {
            ($name:ident, $std:ty, $val:ty) => {
                /// Atomic whose every operation is a model yield point.
                /// `Ordering` arguments are accepted but executed `SeqCst`
                /// (the model explores sequentially consistent schedules).
                #[derive(Debug, Default)]
                pub struct $name {
                    inner: $std,
                }

                impl $name {
                    /// Creates the atomic.
                    pub const fn new(v: $val) -> Self {
                        Self {
                            inner: <$std>::new(v),
                        }
                    }

                    /// Modeled load.
                    pub fn load(&self, _order: Ordering) -> $val {
                        super::super::maybe_yield();
                        self.inner.load(Ordering::SeqCst)
                    }

                    /// Modeled store.
                    pub fn store(&self, v: $val, _order: Ordering) {
                        super::super::maybe_yield();
                        self.inner.store(v, Ordering::SeqCst);
                    }

                    /// Modeled swap.
                    pub fn swap(&self, v: $val, _order: Ordering) -> $val {
                        super::super::maybe_yield();
                        self.inner.swap(v, Ordering::SeqCst)
                    }

                    /// Modeled compare-exchange.
                    pub fn compare_exchange(
                        &self,
                        current: $val,
                        new: $val,
                        _success: Ordering,
                        _failure: Ordering,
                    ) -> Result<$val, $val> {
                        super::super::maybe_yield();
                        self.inner.compare_exchange(
                            current,
                            new,
                            Ordering::SeqCst,
                            Ordering::SeqCst,
                        )
                    }
                }
            };
        }

        macro_rules! modeled_fetch_add {
            ($name:ident, $val:ty) => {
                impl $name {
                    /// Modeled fetch-add.
                    pub fn fetch_add(&self, v: $val, _order: Ordering) -> $val {
                        super::super::maybe_yield();
                        self.inner.fetch_add(v, Ordering::SeqCst)
                    }
                }
            };
        }

        macro_rules! modeled_fetch_or {
            ($name:ident, $val:ty) => {
                impl $name {
                    /// Modeled fetch-or (the bit-claim primitive of
                    /// `nss-sim`'s `AtomicBitSet`).
                    pub fn fetch_or(&self, v: $val, _order: Ordering) -> $val {
                        super::super::maybe_yield();
                        self.inner.fetch_or(v, Ordering::SeqCst)
                    }
                }
            };
        }

        modeled_atomic!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);
        modeled_atomic!(AtomicU32, std::sync::atomic::AtomicU32, u32);
        modeled_atomic!(AtomicU64, std::sync::atomic::AtomicU64, u64);
        modeled_atomic!(AtomicBool, std::sync::atomic::AtomicBool, bool);
        modeled_fetch_add!(AtomicUsize, usize);
        modeled_fetch_add!(AtomicU32, u32);
        modeled_fetch_add!(AtomicU64, u64);
        modeled_fetch_or!(AtomicU64, u64);
    }
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicUsize, Ordering};
    use super::sync::Arc;

    /// Unmodeled use (outside `model`) must behave like plain atomics.
    #[test]
    fn atomics_work_outside_model() {
        let a = AtomicUsize::new(1);
        assert_eq!(a.fetch_add(2, Ordering::SeqCst), 1);
        assert_eq!(a.load(Ordering::SeqCst), 3);
    }

    /// Two increments interleave but atomicity holds in every schedule.
    #[test]
    fn explores_without_false_alarms() {
        super::model(|| {
            let a = Arc::new(AtomicUsize::new(0));
            let hs: Vec<_> = (0..2)
                .map(|_| {
                    let a = Arc::clone(&a);
                    super::thread::spawn(move || {
                        a.fetch_add(1, Ordering::SeqCst);
                    })
                })
                .collect();
            for h in hs {
                h.join().unwrap();
            }
            assert_eq!(a.load(Ordering::SeqCst), 2);
        });
    }

    /// The canonical lost-update race: a non-atomic read-modify-write is
    /// caught by some schedule. This is the shim's own soundness check —
    /// if exploration were not exhaustive this test would go green.
    #[test]
    #[should_panic(expected = "lost update")]
    fn detects_lost_update() {
        super::model(|| {
            let a = Arc::new(AtomicUsize::new(0));
            let hs: Vec<_> = (0..2)
                .map(|_| {
                    let a = Arc::clone(&a);
                    super::thread::spawn(move || {
                        let v = a.load(Ordering::SeqCst);
                        a.store(v + 1, Ordering::SeqCst);
                    })
                })
                .collect();
            for h in hs {
                h.join().unwrap();
            }
            assert_eq!(a.load(Ordering::SeqCst), 2, "lost update");
        });
    }

    /// The schedule space of two 2-op threads is explored more than once.
    #[test]
    fn runs_many_schedules() {
        let n = super::schedule_count(|| {
            let a = Arc::new(AtomicUsize::new(0));
            let hs: Vec<_> = (0..2)
                .map(|_| {
                    let a = Arc::clone(&a);
                    super::thread::spawn(move || {
                        a.fetch_add(1, Ordering::SeqCst);
                        a.fetch_add(1, Ordering::SeqCst);
                    })
                })
                .collect();
            for h in hs {
                h.join().unwrap();
            }
        });
        assert!(n >= 6, "expected several schedules, got {n}");
    }
}
