//! Vendored subset of `criterion` (see `vendor/README.md`).
//!
//! A wall-clock benchmark harness with criterion's builder API:
//! `Criterion::default().warm_up_time(..).measurement_time(..).sample_size(..)`,
//! `bench_function`, `benchmark_group` (+ per-group `sample_size`/`finish`),
//! `Bencher::iter`, and the `criterion_group!` / `criterion_main!` macros.
//!
//! Reporting is deliberately simple: per benchmark it prints the median,
//! minimum, and maximum ns/iter over `sample_size` samples. There is no
//! statistical regression analysis, no HTML report, and no saved baselines —
//! the suite's value here is relative numbers within one run.
//!
//! CLI: the first non-flag argument (as passed by `cargo bench -- <filter>`)
//! is a substring filter on benchmark names; flags such as `--bench` are
//! ignored.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Top-level harness configuration and entry point.
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up: Duration::from_millis(500),
            measurement: Duration::from_secs(2),
            sample_size: 50,
            filter: None,
        }
    }
}

impl Criterion {
    /// Sets the warm-up duration before samples are recorded.
    #[must_use]
    pub fn warm_up_time(mut self, dur: Duration) -> Self {
        self.warm_up = dur;
        self
    }

    /// Sets the total measurement window split across samples.
    #[must_use]
    pub fn measurement_time(mut self, dur: Duration) -> Self {
        self.measurement = dur;
        self
    }

    /// Sets how many timing samples to record per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Reads the name filter from `cargo bench -- <filter>` style CLI args.
    /// Called by `criterion_group!`; harmless to call repeatedly.
    pub fn configure_from_args(&mut self) {
        self.filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && !a.is_empty());
    }

    /// Runs a single benchmark under the harness configuration.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.into();
        run_one(self, &name, f);
        self
    }

    /// Starts a named group of benchmarks sharing overridable settings.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
            measurement: None,
        }
    }
}

/// A group of related benchmarks; names are reported as `group/bench`.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: Option<usize>,
    measurement: Option<Duration>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    /// Overrides the measurement window for benchmarks in this group.
    pub fn measurement_time(&mut self, dur: Duration) -> &mut Self {
        self.measurement = Some(dur);
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name.into());
        let cfg = Criterion {
            warm_up: self.criterion.warm_up,
            measurement: self.measurement.unwrap_or(self.criterion.measurement),
            sample_size: self.sample_size.unwrap_or(self.criterion.sample_size),
            filter: self.criterion.filter.clone(),
        };
        run_one(&cfg, &full, f);
        self
    }

    /// Ends the group (kept for API compatibility; reporting is immediate).
    pub fn finish(&mut self) {}
}

/// Passed to each benchmark closure; call [`Bencher::iter`] exactly once.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `f` back to back.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F>(cfg: &Criterion, name: &str, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    if let Some(filter) = &cfg.filter {
        if !name.contains(filter.as_str()) {
            return;
        }
    }

    // Warm up and estimate a single-iteration cost.
    let warm_start = Instant::now();
    let mut probe_iters: u64 = 1;
    let mut per_iter = Duration::from_nanos(1);
    while warm_start.elapsed() < cfg.warm_up {
        let mut b = Bencher {
            iters: probe_iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        per_iter = (b.elapsed / u32::try_from(probe_iters).unwrap_or(u32::MAX))
            .max(Duration::from_nanos(1));
        probe_iters = probe_iters.saturating_mul(2).min(1 << 20);
    }

    // Split the measurement window into sample_size samples.
    let per_sample = cfg.measurement / u32::try_from(cfg.sample_size).unwrap_or(u32::MAX);
    let iters_per_sample =
        (per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, u128::from(u64::MAX)) as u64;

    let mut samples_ns: Vec<f64> = Vec::with_capacity(cfg.sample_size);
    for _ in 0..cfg.sample_size {
        let mut b = Bencher {
            iters: iters_per_sample,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples_ns.push(b.elapsed.as_nanos() as f64 / iters_per_sample as f64);
    }
    samples_ns.sort_by(|a, b| a.total_cmp(b));

    let median = samples_ns[samples_ns.len() / 2];
    let min = samples_ns[0];
    let max = samples_ns[samples_ns.len() - 1];
    println!(
        "{name:<48} time: [{} {} {}]",
        fmt_ns(min),
        fmt_ns(median),
        fmt_ns(max)
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Declares a benchmark group: either `criterion_group!(name, fn1, fn2)` or
/// the long form with `name = …; config = …; targets = …`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            criterion.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, running each listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(10))
            .sample_size(3);
        let mut calls = 0u32;
        c.bench_function("smoke", |b| {
            calls += 1;
            b.iter(|| std::hint::black_box(2u64 + 2));
        });
        assert!(calls >= 3, "bencher closure should run per sample");
    }

    #[test]
    fn group_overrides_apply() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(10))
            .sample_size(3);
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        let mut calls = 0u32;
        group.bench_function("inner", |b| {
            calls += 1;
            b.iter(|| std::hint::black_box(1u64));
        });
        group.finish();
        assert!(calls >= 2);
    }
}
