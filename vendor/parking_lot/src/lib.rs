//! Vendored subset of `parking_lot` (see `vendor/README.md`).
//!
//! Non-poisoning `Mutex` and `RwLock` with the `parking_lot` lock API
//! (`lock()` / `read()` / `write()` return guards directly, no `Result`),
//! implemented over `std::sync`. A poisoned std lock (panicking holder) is
//! recovered transparently, matching parking_lot's no-poisoning semantics.

#![warn(missing_docs)]

use std::sync::PoisonError;

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock with `parking_lot`'s non-poisoning API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader–writer lock with `parking_lot`'s non-poisoning API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader–writer lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write lock, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn shared_across_threads() {
        let m = std::sync::Arc::new(Mutex::new(0u64));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = m.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 4000);
    }
}
