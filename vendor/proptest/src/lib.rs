//! Vendored subset of `proptest` (see `vendor/README.md`).
//!
//! Supports the surface this workspace's property tests use:
//!
//! * `proptest! { #![proptest_config(ProptestConfig::with_cases(N))] #[test] fn t(x in strat, ..) { .. } }`
//! * Range strategies for floats and integers (`0.1f64..10.0`, `0u64..400`)
//! * Tuple strategies (2- and 3-tuples of strategies)
//! * [`collection::vec`] and [`option::of`] combinators (both nestable)
//! * `prop_assert!` / `prop_assert_eq!`
//!
//! Differences from upstream: cases are generated from a fixed per-test seed
//! (derived from the test name) so failures reproduce exactly on re-run, and
//! there is **no shrinking** — a failing case is reported at the size it was
//! drawn. `prop_assert*` panics carry the case number and the generated
//! inputs via the surrounding harness message.

#![warn(missing_docs)]

use std::ops::Range;

pub use rand::rngs::SmallRng as TestRng;
use rand::Rng;

/// Harness configuration accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of random values of `Self::Value`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value using `rng`.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_strategy_for_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            #[inline]
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.start..self.end)
            }
        }
    )*};
}

impl_strategy_for_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    #[inline]
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.random_range(self.start..self.end)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    #[inline]
    fn generate(&self, rng: &mut TestRng) -> f32 {
        rng.random_range(self.start..self.end)
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

/// `Just(v)` — a strategy that always yields a clone of `v`.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// A strategy producing `Vec`s of values from `element`, with length
    /// drawn uniformly from `size`.
    pub struct VecStrategy<S: Strategy> {
        element: S,
        size: Range<usize>,
    }

    /// Builds a [`VecStrategy`] over the half-open length range `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty proptest vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.random_range(self.size.start..self.size.end);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Option strategies.
pub mod option {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// A strategy producing `Some(inner)` three times out of four.
    pub struct OptionStrategy<S: Strategy> {
        inner: S,
    }

    /// Builds an [`OptionStrategy`] wrapping `inner`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            // Generate the inner value unconditionally so the RNG stream
            // does not depend on the Some/None coin flip.
            let value = self.inner.generate(rng);
            rng.random_bool(0.75).then_some(value)
        }
    }
}

/// Test-harness support used by the `proptest!` expansion.
pub mod test_runner {
    pub use super::{ProptestConfig, TestRng};
    use rand::SeedableRng;

    /// Derives a deterministic RNG from a test's name (FNV-1a over the
    /// bytes), so each property test sees a stable, independent stream.
    pub fn rng_for(test_name: &str) -> TestRng {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in test_name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng::seed_from_u64(hash)
    }
}

/// Common imports mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Just, ProptestConfig, Strategy};
}

/// Asserts a condition inside a property test, reporting the case number.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)*) => {
        let __prop_holds: bool = $cond;
        if !__prop_holds {
            panic!(
                "proptest case failed: {} (no shrinking in vendored proptest; \
                 the per-test RNG is deterministic, re-run to reproduce)",
                format!($($fmt)*)
            );
        }
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "{:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "{:?} != {:?}: {}", l, r, format!($($fmt)*));
    }};
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "{:?} == {:?}", l, r);
    }};
}

/// Declares property tests. Each `fn name(arg in strategy, ..) { body }`
/// expands to a `#[test]` that runs `body` over `config.cases` random
/// assignments drawn from the strategies.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl!(($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::test_runner::rng_for(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for _case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 0.5f64..2.5, n in 3u32..9, m in 0usize..4) {
            prop_assert!((0.5..2.5).contains(&x));
            prop_assert!((3..9).contains(&n));
            prop_assert!(m < 4);
        }

        #[test]
        fn nested_collections_generate(
            rows in crate::collection::vec(
                crate::collection::vec((-1.0f64..1.0, 0u64..10), 1..5),
                1..4,
            ),
            maybe in crate::option::of(0.0f64..1.0),
        ) {
            prop_assert!(!rows.is_empty() && rows.len() < 4);
            for row in &rows {
                prop_assert!(!row.is_empty() && row.len() < 5);
                for &(x, k) in row {
                    prop_assert!((-1.0..1.0).contains(&x));
                    prop_assert!(k < 10);
                }
            }
            if let Some(v) = maybe {
                prop_assert!((0.0..1.0).contains(&v));
            }
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::Strategy;
        let strat = (0.0f64..1.0, 0u64..100);
        let mut a = crate::test_runner::rng_for("t");
        let mut b = crate::test_runner::rng_for("t");
        for _ in 0..50 {
            assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
        }
    }

    #[test]
    #[should_panic(expected = "proptest case failed")]
    fn failing_property_panics() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]
            #[allow(unused)]
            fn inner(x in 0.0f64..1.0) {
                prop_assert!(x < 0.0, "x was {x}");
            }
        }
        inner();
    }
}
