//! Vendored subset of `rand` 0.9 (see `vendor/README.md`).
//!
//! Implements the exact surface this workspace uses:
//!
//! * [`rngs::SmallRng`] — xoshiro256++ seeded through SplitMix64 (the same
//!   generator family upstream `SmallRng` uses on 64-bit targets). Streams
//!   are **not** bit-compatible with upstream; all experiment seeds in this
//!   repository are defined in terms of this implementation.
//! * [`SeedableRng::seed_from_u64`] and [`Rng::{random, random_range,
//!   random_bool}`](Rng) over `f64`/`f32` and primitive integer ranges.
//!
//! `f64` generation follows the upstream convention of 53 mantissa bits:
//! `(next_u64 >> 11) * 2^-53`, uniform on `[0, 1)`.

#![warn(missing_docs)]

use std::ops::Range;

/// Low-level uniform bit generation.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (whitened internally, so
    /// low-entropy seeds like 0, 1, 2… still yield well-mixed states).
    fn seed_from_u64(seed: u64) -> Self;
}

/// SplitMix64 step, used to expand a 64-bit seed into generator state.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types samplable uniformly over their "standard" domain (`[0,1)` for
/// floats, the full range for integers).
pub trait StandardSample: Sized {
    /// Draws one value from `rng`.
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    #[inline]
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    #[inline]
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for u64 {
    #[inline]
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    #[inline]
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for bool {
    #[inline]
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types samplable uniformly from a half-open `Range`.
pub trait UniformSample: Sized {
    /// Draws one value from `range` using `rng`. Panics on empty ranges.
    fn uniform<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            #[inline]
            fn uniform<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "empty random_range");
                let span = (range.end as i128 - range.start as i128) as u128;
                // Widening-multiply bound scaling (Lemire); bias is < 2^-64
                // for the span sizes used here.
                let hi = ((u128::from(rng.next_u64()) * span) >> 64) as i128;
                (range.start as i128 + hi) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl UniformSample for f64 {
    #[inline]
    fn uniform<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "empty random_range");
        let u: f64 = StandardSample::standard(rng);
        let v = range.start + (range.end - range.start) * u;
        // Guard against rounding up to the excluded endpoint.
        if v < range.end {
            v
        } else {
            range.start
        }
    }
}

impl UniformSample for f32 {
    #[inline]
    fn uniform<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "empty random_range");
        let u: f32 = StandardSample::standard(rng);
        let v = range.start + (range.end - range.start) * u;
        if v < range.end {
            v
        } else {
            range.start
        }
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of `T` from its standard distribution.
    #[inline]
    fn random<T: StandardSample>(&mut self) -> T {
        T::standard(self)
    }

    /// Draws uniformly from the half-open range `range`.
    #[inline]
    fn random_range<T: UniformSample>(&mut self, range: Range<T>) -> T {
        T::uniform(self, range)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        let u: f64 = self.random();
        u < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Small fast generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// xoshiro256++ — the generator family upstream `SmallRng` uses on
    /// 64-bit platforms. Not cryptographically secure.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // SplitMix64 never yields four zeros from any seed, but keep the
            // generator well-defined under direct state injection too.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Convenience re-exports mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::SmallRng;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval_with_sane_mean() {
        let mut rng = SmallRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn int_ranges_cover_uniformly() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut counts = [0u32; 3];
        for _ in 0..30_000 {
            counts[rng.random_range(0..3usize)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "skewed: {counts:?}");
        }
        for _ in 0..1000 {
            let v = rng.random_range(-5i32..5);
            assert!((-5..5).contains(&v));
        }
    }

    #[test]
    fn float_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(11);
        for _ in 0..10_000 {
            let v = rng.random_range(-3.0f64..3.0);
            assert!((-3.0..3.0).contains(&v));
        }
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(13);
        let hits = (0..50_000).filter(|_| rng.random_bool(0.25)).count();
        let frac = hits as f64 / 50_000.0;
        assert!((frac - 0.25).abs() < 0.01, "frac {frac}");
    }
}
