//! Vendored trivial `#[derive(Serialize)]` / `#[derive(Deserialize)]`.
//!
//! The vendored `serde` traits are empty markers (this workspace never
//! drives a real serializer), so the derives only need to name the type and
//! emit empty impls. Implemented with a plain token scan — no `syn`/`quote`
//! — which supports non-generic structs, enums, and unions; deriving on a
//! generic type panics with a clear message rather than mis-expanding.

use proc_macro::TokenStream;

/// Returns the identifier following the `struct` / `enum` / `union` keyword,
/// rejecting generic items (none exist in this workspace).
fn item_name(input: TokenStream) -> String {
    let mut tokens = input.into_iter();
    while let Some(tok) = tokens.next() {
        if let proc_macro::TokenTree::Ident(ident) = &tok {
            let kw = ident.to_string();
            if kw == "struct" || kw == "enum" || kw == "union" {
                let name = match tokens.next() {
                    Some(proc_macro::TokenTree::Ident(name)) => name.to_string(),
                    other => panic!("serde_derive (vendored): expected item name, got {other:?}"),
                };
                if let Some(proc_macro::TokenTree::Punct(p)) = tokens.next() {
                    if p.as_char() == '<' {
                        panic!(
                            "serde_derive (vendored): generic type `{name}` is not supported; \
                             extend vendor/serde_derive if needed"
                        );
                    }
                }
                return name;
            }
        }
    }
    panic!("serde_derive (vendored): no struct/enum/union found in derive input");
}

/// Emits `impl serde::Serialize for <Type> {}`. The `serde(...)` helper
/// attribute (e.g. `#[serde(default)]`) is registered so field annotations
/// parse; it carries no behavior because the traits are markers.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = item_name(input);
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .expect("vendored Serialize derive produced invalid tokens")
}

/// Emits `impl<'de> serde::Deserialize<'de> for <Type> {}`; registers the
/// `serde(...)` helper attribute like the Serialize derive.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = item_name(input);
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .expect("vendored Deserialize derive produced invalid tokens")
}
