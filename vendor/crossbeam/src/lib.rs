//! Vendored subset of `crossbeam` (see `vendor/README.md`).
//!
//! Provides `crossbeam::channel::{unbounded, Sender, Receiver}` backed by
//! `std::sync::mpsc`. Only the multi-producer/single-consumer shape this
//! workspace uses is supported (receivers are not cloneable).

#![warn(missing_docs)]

/// Multi-producer channels (subset of `crossbeam-channel`).
pub mod channel {
    use std::sync::mpsc;

    pub use std::sync::mpsc::{RecvError, SendError, TryRecvError};

    /// Creates an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    /// The sending half of an unbounded channel (cloneable).
    #[derive(Debug)]
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Sends a message, failing only if the receiver was dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }
    }

    /// The receiving half of an unbounded channel.
    #[derive(Debug)]
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders are dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }

        /// Iterates over messages, ending when all senders are dropped.
        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.0.iter()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::IntoIter<T>;
        fn into_iter(self) -> Self::IntoIter {
            self.0.into_iter()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::Iter<'a, T>;
        fn into_iter(self) -> Self::IntoIter {
            self.0.iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn fan_in_collects_everything() {
        let (tx, rx) = channel::unbounded::<usize>();
        std::thread::scope(|s| {
            for w in 0..4 {
                let tx = tx.clone();
                s.spawn(move || {
                    for i in 0..25 {
                        tx.send(w * 25 + i).unwrap();
                    }
                });
            }
            drop(tx);
            let mut got: Vec<usize> = rx.into_iter().collect();
            got.sort_unstable();
            assert_eq!(got, (0..100).collect::<Vec<_>>());
        });
    }

    #[test]
    fn send_after_receiver_drop_errors() {
        let (tx, rx) = channel::unbounded::<u8>();
        drop(rx);
        assert!(tx.send(1).is_err());
    }
}
